"""One tenant's served pipeline: queue, writer task, published views.

A :class:`TenantSession` owns one
:class:`~repro.runtime.supervisor.Supervisor` (and therefore one DISC, one
window cursor, one input guard, one checkpoint store) and drives it from a
bounded :class:`asyncio.Queue` with a **single writer task** — the only code
that ever mutates clustering state. Producers enqueue through
:meth:`TenantSession.offer` under the session's admission policy
(``block`` / ``shed-oldest`` / ``reject``); readers are answered from
:attr:`TenantSession.view`, an immutable :class:`SessionView` the writer
swaps in atomically after every window advance (copy-on-publish). Because a
view is fully constructed before the single reference assignment, a reader
can never observe a half-advanced stride, and because reads touch only the
published view, they never contend with ingestion.
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterable

import math

from repro.common.config import WindowSpec
from repro.common.distance import squared_distance
from repro.common.errors import ConfigurationError, ReproError
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.store import NO_ID
from repro.datasets.io import MalformedRecord
from repro.query.archive import ArchiveError, SnapshotArchive
from repro.query.journal import EvolutionJournal, stride_record
from repro.runtime.chaos import RuntimeHooks
from repro.runtime.stats import RuntimeStats
from repro.runtime.supervisor import Supervisor
from repro.runtime.wal import WalError, WriteAheadLog
from repro.serve.config import SessionConfig
from repro.serve.protocol import SUBSCRIBE_POLICIES, ServeError

#: Queue sentinel telling the writer task to exit.
_CLOSE = object()


class _DurabilityHooks(RuntimeHooks):
    """Couple the supervisor's stride/checkpoint boundaries to the logs.

    - :meth:`after_stride` publishes the stride's CDC record to the
      evolution journal (and its snapshot to the archive, on cadence)
      *inside* ``feed`` — so by the time a checkpoint is taken, every
      stride it covers is already journaled.
    - :meth:`before_checkpoint` fsyncs the journal, making the invariant
      durable: a durable checkpoint at stride S implies a durable journal
      through stride S. Recovery can therefore always resume publishing
      contiguously (WAL-tail replay re-derives anything past the
      checkpoint idempotently).
    - :meth:`after_checkpoint` garbage-collects WAL segments the
      checkpoint's ``stream_offset`` covers, and journal segments older
      than the retention window (never past the newest archive snapshot
      that still needs them for delta replay).
    """

    def __init__(self, session: "TenantSession") -> None:
        self.session = session

    def after_stride(self, stride: int, summary) -> None:
        self.session._journal_stride(stride, summary)

    def before_checkpoint(self, stride: int) -> None:
        evjournal = self.session.evjournal
        if evjournal is not None:
            try:
                evjournal.sync()
            except OSError as exc:  # pragma: no cover - disk failure
                self.session.journal_error = f"journal sync failed: {exc}"

    def after_checkpoint(self, stride: int, path) -> None:
        wal = self.session.wal
        if wal is not None:
            wal.compact(self.session.supervisor.stats.points_seen)
        self.session._compact_journal(stride)


class _Subscriber:
    """One live ``SUBSCRIBE`` consumer: a bounded push queue + its policy.

    The writer fans freshly journaled records into :attr:`queue`; the
    server-side pump task drains it onto the subscriber's connection. A
    ``None`` in the queue is the terminal marker (:attr:`reason` says why).
    """

    __slots__ = ("queue", "policy", "closed", "reason", "task")

    def __init__(self, policy: str, queue_limit: int) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self.policy = policy
        self.closed = False
        self.reason: str | None = None
        self.task = None  # the pump task, attached by the server

    def end(self, reason: str) -> None:
        """Mark the subscription over and wake the pump.

        When the queue is full (the slow consumer that usually got us
        here), the newest undelivered record is dropped to make room for
        the terminal marker — the ``end`` frame's ``cursor`` tells the
        client where to resume, so nothing is silently lost.
        """
        if self.closed:
            return
        self.closed = True
        self.reason = reason
        try:
            self.queue.put_nowait(None)
        except asyncio.QueueFull:
            try:
                self.queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - race-free
                pass
            try:
                self.queue.put_nowait(None)
            except asyncio.QueueFull:  # pragma: no cover - race-free
                pass


class SessionView:
    """Immutable, point-in-time read surface of one tenant.

    Published by the writer once per window advance; every query of the
    serving layer is answered from the newest view without touching live
    clustering state.

    Attributes:
        stride: index of the window advance this view reflects (``-1``
            before the first advance).
        clustering: the :class:`~repro.common.snapshot.Clustering` snapshot.
        eps: the session's distance threshold (the ad-hoc classification
            radius).
        cores: ``(pid, coords, cluster_id)`` for every core point — the
            data behind nearest-core classification.
    """

    __slots__ = ("stride", "clustering", "eps", "cores")

    def __init__(
        self,
        stride: int,
        clustering: Clustering,
        eps: float,
        cores: tuple[tuple[int, tuple[float, ...], int], ...],
    ) -> None:
        self.stride = stride
        self.clustering = clustering
        self.eps = eps
        self.cores = cores

    @classmethod
    def empty(cls, eps: float) -> "SessionView":
        return cls(-1, Clustering({}, {}), eps, ())

    def membership(self, pid: int) -> dict:
        """Label + category of a tracked point (noise when unknown)."""
        return {
            "pid": pid,
            "stride": self.stride,
            "label": self.clustering.label_of(pid),
            "category": self.clustering.category_of(pid).value,
            "tracked": pid in self.clustering.categories,
        }

    def classify(self, coords: tuple[float, ...]) -> dict:
        """Label an ad-hoc point by its nearest core within ``eps``.

        The DBSCAN assignment rule for a hypothetical arrival: a point
        within ``eps`` of a core belongs to that core's cluster (nearest
        core wins; exact distance ties break to the lowest cluster label,
        then the lowest core pid, so the answer never depends on the order
        the core set is iterated in); otherwise it is noise. The scan is
        linear over the core set — see ``docs/serving.md`` for capacity
        notes.
        """
        best: tuple[float, int, int] | None = None  # (sq, label, pid)
        eps_sq = self.eps * self.eps
        for pid, core_coords, label in self.cores:
            if len(core_coords) != len(coords):
                continue
            sq = squared_distance(coords, core_coords)
            if sq <= eps_sq:
                key = (sq, label, pid)
                if best is None or key < best:
                    best = key
        return {
            "stride": self.stride,
            "label": Clustering.NOISE_ID if best is None else best[1],
            "nearest_core": None if best is None else best[2],
            "distance": None if best is None else math.sqrt(best[0]),
        }

    def snapshot_payload(self) -> dict:
        """The full-snapshot wire form (labels, categories, counts)."""
        clustering = self.clustering
        return {
            "stride": self.stride,
            "num_points": clustering.num_points,
            "num_clusters": clustering.num_clusters,
            "labels": {str(pid): cid for pid, cid in clustering.labels.items()},
            "categories": {
                str(pid): cat.value for pid, cat in clustering.categories.items()
            },
        }


class TenantSession:
    """One tenant: bounded ingest queue, single writer, published views.

    Args:
        name: tenant identifier (protocol ``session`` field).
        config: the session's :class:`~repro.serve.config.SessionConfig`.
        store: checkpoint directory (or ``None`` for a non-durable tenant).
        tracer: optional :class:`~repro.observability.trace.Tracer` for
            per-tenant stride traces / Prometheus metrics.
        journal: optional list collecting every raw item the writer fed to
            the pipeline, in order — the *post-admission* sequence. Tests
            use it to replay a served run through ``api.cluster_stream`` and
            prove byte-identical labels under every backpressure policy.
        wal: optional :class:`~repro.runtime.wal.WriteAheadLog`. When set,
            :meth:`offer` journals every admitted item *before* it is
            acknowledged (ACK ⇒ durable under ``fsync=always``), and
            :meth:`start` replays the WAL tail past the restored
            checkpoint's stream offset — a ``kill -9`` at any instant loses
            zero acknowledged points. A WAL demands the ``block`` policy:
            :meth:`offer` journals-then-enqueues, and the shedding policies
            drop *already journaled (and acked)* items from the queue, so a
            post-crash replay would resurrect points the pre-crash pipeline
            never fed and the restarted tenant's labels would silently
            diverge from a never-crashed run. ``SessionConfig`` enforces the
            rule for config-driven WALs; this constructor enforces it again
            for directly injected ``wal`` objects, which bypass the config.
        evjournal: optional :class:`~repro.query.journal.EvolutionJournal`.
            When set, the writer publishes every closed stride's CDC
            record (events + membership delta) at the copy-on-publish
            point — the feed behind ``SUBSCRIBE``/``EVENTS`` and the delta
            source for ``AS_OF`` time travel. Unlike the WAL it works
            under any backpressure policy: it journals *derived strides*,
            not admissions.
        archive: optional :class:`~repro.query.archive.SnapshotArchive`
            writing sparse full snapshots every ``config.archive_every``
            strides for ``AS_OF`` queries.
    """

    def __init__(
        self,
        name: str,
        config: SessionConfig,
        *,
        store=None,
        tracer=None,
        journal: list | None = None,
        wal: WriteAheadLog | None = None,
        evjournal: EvolutionJournal | None = None,
        archive: SnapshotArchive | None = None,
    ) -> None:
        if wal is not None and config.backpressure != "block":
            raise ConfigurationError(
                f"session {name!r}: a write-ahead log requires the 'block' "
                f"backpressure policy, not {config.backpressure!r} — "
                "shed-oldest/reject drop items after they were journaled "
                "and acked, so WAL replay after a crash would resurrect "
                "points the live pipeline never processed"
            )
        self.name = name
        self.config = config
        self.tracer = tracer
        self.journal = journal
        self.wal = wal
        self.evjournal = evjournal
        self.archive = archive
        if tracer is not None and wal is not None:
            tracer.wal_source = wal
        if tracer is not None and evjournal is not None:
            tracer.journal_source = evjournal
        needs_hooks = wal is not None or evjournal is not None or archive is not None
        self.supervisor = Supervisor(
            config.eps,
            config.tau,
            WindowSpec(window=config.window, stride=config.stride),
            store=store,
            checkpoint_every=config.checkpoint_every,
            index=config.index,
            time_based=config.time_based,
            policy=config.on_malformed,
            stats=RuntimeStats(),
            hooks=_DurabilityHooks(self) if needs_hooks else None,
            tracer=tracer,
        )
        self.view: SessionView = SessionView.empty(config.eps)
        self.draining = False
        self.drained = False
        self.failed: str | None = None
        self.received = 0  # raw items offered by producers
        self.shed = 0  # queued items dropped by shed-oldest
        self.rejected = 0  # items refused by reject (or while draining)
        self.skipped_replay = 0  # replayed prefix consumed after a resume
        self.ingested = 0  # items fed into the pipeline by the writer
        self.queries = 0
        self.restarts = 0  # supervised restarts of this tenant (service-set)
        self.wal_error: str | None = None  # last journalling failure, if any
        self.journal_error: str | None = None  # last CDC/archive failure
        self.journal_floor_pinned: str | None = None  # why floor < retention cut
        self.crashed = asyncio.Event()  # unexpected writer death (supervision)
        self.replay_offset = 0  # prefix length a resume asked us to swallow
        self._skip = 0  # replay prefix still to swallow (resume)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=config.queue_limit)
        self._writer: asyncio.Task | None = None
        self._journal_prev: Clustering | None = None  # CDC delta base
        self._last_time: float | None = None  # stamp of the last fed point
        self._pending_push: list[dict] = []  # journaled, not yet fanned out
        self._subscribers: list[_Subscriber] = []

    # ------------------------------------------------------------- lifecycle

    def start(
        self, *, resume: bool | str = False, swallow_prefix: bool = True
    ) -> int:
        """Initialise (or restore) the pipeline and start the writer task.

        Returns the replay offset: how many leading raw stream items the
        restored state already covers — the checkpoint's stream offset plus
        every acknowledged item recovered from the write-ahead log past it.
        With ``swallow_prefix`` (the default, for full-server restarts) the
        session swallows exactly that many subsequent offers itself, so a
        producer simply re-sends the stream from the beginning after a
        crash. A supervised in-place restart passes ``False``: connected
        clients never saw the crash and keep sending *new* points only.
        """
        offset = self.supervisor.begin(resume=resume)
        if self.supervisor.stride > 0 and (
            self.evjournal is not None or self.archive is not None
        ):
            # The CDC delta base after a restore is the checkpointed
            # clustering (stride index ``supervisor.stride - 1``): the next
            # closed stride diffs against it, exactly as the pre-crash
            # writer would have.
            self._journal_prev = self.supervisor.clusterer.snapshot()
        replayed = 0
        if self.wal is not None:
            # The acknowledged tail the checkpoint does not cover. Feeding
            # it reconstructs exactly the pre-crash pipeline state: same
            # items, same order, same stride boundaries — and the stride
            # hooks re-derive (and idempotently skip) the journal records
            # those boundaries produced before the crash.
            try:
                for item in self.wal.replay(offset):
                    if isinstance(item, StreamPoint):
                        self._last_time = item.time
                    self.supervisor.feed(item)
                    if self.journal is not None:
                        self.journal.append(item)
                    replayed += 1
                    self.ingested += 1
            except ReproError as exc:
                # Deterministic re-failure (e.g. a journaled malformed
                # record under the strict policy): the session comes back
                # in the same failed state the crash left it in.
                self.failed = f"{type(exc).__name__}: {exc}"
        self.replay_offset = offset + replayed
        self._skip = self.replay_offset if swallow_prefix else 0
        self._flush_pending_nowait()
        if self.supervisor.stride > 0:
            # Restored mid-run: publish the recovered clustering so readers
            # see the resumed state before the first new advance.
            self._publish()
        self._writer = asyncio.get_running_loop().create_task(
            self._writer_loop(), name=f"serve-writer-{self.name}"
        )
        return self.replay_offset

    async def close(self) -> None:
        """Stop the writer task (does not checkpoint; see :meth:`drain`)."""
        self.end_subscriptions("closed")
        if self._writer is None:
            return
        if not self._writer.done():
            await self._queue.put(_CLOSE)
        await self._writer
        self._writer = None

    # ------------------------------------------------------------- ingestion

    async def offer(
        self, items: Iterable[StreamPoint | MalformedRecord]
    ) -> dict:
        """Admit a batch of raw stream items under the session policy.

        Returns the admission outcome: ``accepted`` (enqueued, or swallowed
        as replayed prefix after a resume), ``shed``, ``rejected``, and the
        queue ``depth`` afterwards. With a write-ahead log every accepted
        item is journaled before enqueueing and the log is committed before
        this method returns — the acknowledgement implies durability under
        the configured fsync policy.
        """
        accepted = shed = rejected = 0
        journaled = 0
        policy = self.config.backpressure
        for item in items:
            self.received += 1
            if self.failed is not None or self.draining:
                rejected += 1
                continue
            if self._skip > 0:
                # Replay of a prefix the restored checkpoint already covers.
                self._skip -= 1
                self.skipped_replay += 1
                accepted += 1
                continue
            if self.wal is not None:
                # Journal-then-enqueue: an item the producer will see
                # acknowledged exists on disk (page cache at worst; the
                # commit below applies the fsync policy) before the
                # pipeline can touch it. A failed append (disk full, broken
                # log) refuses the item instead of acknowledging it.
                try:
                    self.wal.append(item)
                    journaled += 1
                except WalError as exc:
                    self.wal_error = str(exc)
                    rejected += 1
                    continue
            if policy == "block":
                await self._queue.put(item)
                accepted += 1
            elif policy == "shed-oldest":
                while self._queue.full():
                    try:
                        self._queue.get_nowait()
                    except asyncio.QueueEmpty:  # pragma: no cover - race-free
                        break
                    self._queue.task_done()
                    shed += 1
                self._queue.put_nowait(item)
                accepted += 1
            else:  # reject
                if self._queue.full():
                    rejected += 1
                else:
                    self._queue.put_nowait(item)
                    accepted += 1
        self.shed += shed
        self.rejected += rejected
        if self.wal is not None and journaled:
            try:
                self.wal.commit()  # the ACK boundary: durable per policy
            except OSError as exc:
                # The fsync itself failed: the batch is enqueued but its
                # durability cannot be promised — withhold the ack.
                self.wal_error = f"WAL commit failed: {exc}"
                raise ServeError(
                    "wal-error",
                    f"session {self.name!r} could not make the batch "
                    f"durable: {exc}",
                ) from exc
        result = {
            "accepted": accepted,
            "shed": shed,
            "rejected": rejected,
            "depth": self._queue.qsize(),
        }
        if self.wal_error is not None and rejected:
            result["wal_error"] = self.wal_error
        return result

    async def drain(self, *, flush_tail: bool = False) -> dict:
        """Stop admitting, flush the queue, take the final checkpoint.

        Args:
            flush_tail: also close the trailing partial stride
                (end-of-stream semantics, matching what
                ``api.cluster_stream`` does when its input ends). Leave
                ``False`` to drain for a restart: the partial batch is
                checkpointed as-is and the resumed session continues the
                stream exactly where it stopped.

        Returns ``{"stride", "ingested", "checkpointed"}``.
        """
        self.draining = True
        if self.failed is None:
            await self._queue.join()  # writer has fed everything enqueued
            if flush_tail and self.failed is None:
                if self.supervisor.finish():
                    self._publish()
            if self._pending_push:
                await self._fanout(self._take_pending())
            # The writer may have died on an item it dequeued during the
            # join; never checkpoint a failed session.
            path = None if self.failed else self.supervisor.final_checkpoint()
        else:
            path = None
        self.end_subscriptions("drained")
        self.drained = True
        return {
            "stride": self.view.stride,
            "ingested": self.ingested,
            "checkpointed": path is not None,
        }

    # ------------------------------------------------------------- the writer

    async def _writer_loop(self) -> None:
        """The single writer: dequeue, feed, publish. Nothing else mutates."""
        while True:
            item = await self._queue.get()
            if item is _CLOSE:
                self._queue.task_done()
                return
            if isinstance(item, StreamPoint):
                # The stamp any stride this item closes is journaled under.
                self._last_time = item.time
            try:
                results = self.supervisor.feed(item)
            except ReproError as exc:
                self.failed = f"{type(exc).__name__}: {exc}"
                self._queue.task_done()
                self._discard_queue()
                return
            except Exception as exc:  # noqa: BLE001 - crash isolation
                # Anything that is not a policy-governed ReproError is an
                # unexpected crash: isolate the tenant and signal the
                # service supervisor, which restarts it from
                # checkpoint + WAL with backoff.
                self.failed = f"crashed: {type(exc).__name__}: {exc}"
                self._queue.task_done()
                self._discard_queue()
                self.crashed.set()
                return
            if self.journal is not None:
                self.journal.append(item)
            self.ingested += 1
            if results:
                self._publish()
            if self._pending_push:
                # Commit-then-push: under journal_fsync=always a record is
                # durable before any subscriber can observe it, so a crash
                # can never lose an event a client already reacted to.
                await self._fanout(self._take_pending())
            self._queue.task_done()
            if results:
                # A stride boundary is the natural scheduling point: let
                # pending readers observe the freshly published view before
                # the next batch of writes.
                await asyncio.sleep(0)

    def _discard_queue(self) -> None:
        """Unblock join()/producers after a writer failure."""
        while True:
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            self._queue.task_done()

    def _publish(self) -> None:
        """Build an immutable view from live state and swap it in atomically.

        Runs between strides in the writer task (or during start/drain, when
        the writer is idle), so it reads a quiescent clusterer. The view is
        complete before the single reference assignment below — the only
        "lock" the read path needs.
        """
        clusterer = self.supervisor.clusterer
        if clusterer is None:  # pragma: no cover - publish before begin()
            return
        clustering = clusterer.snapshot()
        state = clusterer.state
        arena = state.columnar() if hasattr(state, "columnar") else None
        if arena is not None:
            # Columnar fast path: one masked slice instead of a per-record
            # scan. The cores tuple's order is irrelevant to readers —
            # classify() breaks ties by (distance, label, pid), not by
            # iteration order.
            slots = arena.live_slots()
            mask = (arena.n_eps[slots] >= state.params.tau) & (
                arena.cid[slots] != NO_ID
            )
            core_slots = slots[mask] if len(slots) else slots
            pids = arena.pid[core_slots].tolist()
            coords = arena.coords[core_slots].tolist()
            cores = tuple(
                (pid, tuple(row), clustering.label_of(pid))
                for pid, row in zip(pids, coords)
            )
        else:
            cores = tuple(
                (pid, rec.coords, clustering.label_of(pid))
                for pid, rec in state.records.items()
                if state.is_core(rec) and rec.cid is not None
            )
        self.view = SessionView(
            self.supervisor.stride - 1, clustering, self.config.eps, cores
        )

    # ------------------------------------------------------------- CDC journal

    def _journal_stride(self, stride: int, summary) -> None:
        """Publish one closed stride's CDC record (supervisor hook).

        Runs inside ``feed``/``finish`` right after the stride closed and
        *before* any checkpoint for it can be taken, so the journal never
        trails a durable checkpoint. Already-journaled strides (WAL-tail
        replay after a crash) are skipped idempotently by ``publish`` —
        the deterministic pipeline re-derives them byte-identically.
        Journal/archive failures degrade CDC (recorded in
        ``journal_error``) instead of failing the tenant.
        """
        if self.evjournal is None and self.archive is None:
            return
        clustering = self.supervisor.clusterer.snapshot()
        record = stride_record(
            stride,
            self._journal_prev,
            clustering,
            summary,
            time=self._last_time,
        )
        self._journal_prev = clustering
        if self.evjournal is not None:
            try:
                if self.evjournal.publish(record) is not None:
                    self._pending_push.append(record)
            except WalError as exc:
                self.journal_error = str(exc)
                self.end_subscriptions("journal-error")
        if self.archive is not None:
            try:
                self.archive.maybe_snapshot(stride, clustering)
            except (ArchiveError, OSError) as exc:
                self.journal_error = str(exc)

    def _compact_journal(self, stride: int) -> None:
        """Retention GC at a checkpoint boundary (supervisor hook).

        Keeps at least ``journal_retention`` strides of history, and never
        cuts past the newest archive snapshot still needed to answer
        ``AS_OF`` at the retention floor (delta replay starts from a
        snapshot at or before the asked stride).

        When the archive has no snapshot at or before the retention cut —
        a replay-only archive (``archive_every=0``), or a snapshot cadence
        coarser than the retention window — compaction still advances to
        the newest *answerable* stride (the floor every retained ``AS_OF``
        can already be served from) instead of pinning the floor at 0 and
        letting the journal grow without bound; the reason the floor lags
        the retention cut is surfaced in ``STATS``.
        """
        evjournal = self.evjournal
        retention = self.config.journal_retention
        if evjournal is None or retention <= 0:
            return
        upto = stride - retention
        answerable = upto
        reason = None
        if self.archive is not None:
            snap = self.archive.latest_at_or_before(upto)
            if snap is not None:
                # Delta replay for AS_OF(upto) starts at snap: history in
                # [snap+1, upto) stays needed, everything older does not.
                answerable = min(upto, snap + 1)
                if answerable < upto:
                    reason = (
                        f"archive cadence {self.archive.every} > retention "
                        f"{retention}: the newest snapshot at or before the "
                        f"retention cut {upto} is stride {snap}, so the "
                        f"floor holds at {answerable} until the next "
                        "snapshot crosses the cut"
                    )
            else:
                # No snapshot at or before the cut at all. With a
                # replay-only archive (archive_every=0) every AS_OF
                # materializes by replaying from stride 0, so no prefix is
                # ever cuttable; with a snapshotting archive this means
                # even the stride-0 snapshot is missing — equally nothing
                # to stand a delta replay on. Either way AS_OF coverage
                # wins over retention: compact only what is already gone.
                answerable = min(upto, evjournal.floor)
                if answerable < upto:
                    reason = (
                        "replay-only archive (archive_every=0): AS_OF "
                        "replays the journal from stride 0, so retention "
                        f"cannot advance the floor past {evjournal.floor}"
                        if self.archive.every <= 0
                        else f"no archive snapshot at or before the "
                        f"retention cut {upto}; the floor holds at "
                        f"{evjournal.floor}"
                    )
        self.journal_floor_pinned = reason
        if answerable > 0:
            evjournal.compact(answerable)

    def _take_pending(self) -> list[dict]:
        """Freshly journaled records, committed (fsync policy) for push."""
        pending, self._pending_push = self._pending_push, []
        if pending and self.evjournal is not None:
            try:
                self.evjournal.commit()
            except OSError as exc:  # pragma: no cover - disk failure
                self.journal_error = f"journal commit failed: {exc}"
        return pending

    def _flush_pending_nowait(self) -> None:
        """Best-effort fanout during synchronous recovery (``start``).

        Subscribers carried across a supervised restart get records that
        became *newly* journaled during WAL-tail replay (possible when the
        journal's fsync policy is weaker than the WAL's). A full queue here
        ends that subscription — the client resumes from its cursor.
        """
        for record in self._take_pending():
            for sub in list(self._subscribers):
                if sub.closed:
                    continue
                try:
                    sub.queue.put_nowait(record)
                except asyncio.QueueFull:
                    sub.end("slow-consumer")

    async def _fanout(self, records: list[dict]) -> None:
        """Deliver records to every live subscriber under its policy.

        ``block`` awaits queue space — the writer stalls, the ingest queue
        fills, and producers feel it as backpressure, exactly like the
        ingest ``block`` policy. ``disconnect`` ends the subscription when
        its queue is full (the terminal frame carries the resume cursor).
        """
        for record in records:
            for sub in list(self._subscribers):
                if sub.closed:
                    self._subscribers.remove(sub)
                    continue
                if sub.policy == "block":
                    await sub.queue.put(record)
                else:  # disconnect
                    try:
                        sub.queue.put_nowait(record)
                    except asyncio.QueueFull:
                        sub.end("slow-consumer")

    # ---------------------------------------------------------- subscriptions

    def subscribe(
        self,
        *,
        cursor: int = 0,
        policy: str = "block",
        queue_limit: int = 256,
    ) -> tuple[_Subscriber, int, int]:
        """Register a push consumer; return ``(subscriber, cursor, head)``.

        Atomic with respect to the writer (no awaits): records below
        ``head`` at registration time are the backlog the server pump
        streams from the journal; records from ``head`` on arrive through
        the subscriber queue. ``cursor`` is clamped to the journal's
        retention floor (the response tells the client where it actually
        starts).
        """
        if self.evjournal is None:
            raise ServeError(
                "bad-request",
                f"session {self.name!r} has no evolution journal; "
                "open it with journal=true to subscribe",
            )
        if policy not in SUBSCRIBE_POLICIES:
            raise ServeError(
                "bad-request",
                f"unknown subscribe policy {policy!r}; "
                f"expected one of {SUBSCRIBE_POLICIES}",
            )
        if self.drained:
            raise ServeError(
                "draining", f"session {self.name!r} is drained; no more strides"
            )
        effective = max(int(cursor), self.evjournal.floor)
        head = self.evjournal.head
        sub = _Subscriber(policy, queue_limit)
        self._subscribers.append(sub)
        return sub, effective, head

    def unsubscribe(self, sub: _Subscriber) -> None:
        if sub in self._subscribers:
            self._subscribers.remove(sub)

    def end_subscriptions(self, reason: str) -> None:
        """Terminate every live subscription (drain/close/failure)."""
        for sub in list(self._subscribers):
            sub.end(reason)
        self._subscribers.clear()

    def events(
        self, cursor: int = 0, limit: int | None = None
    ) -> tuple[list[dict], int, int]:
        """``EVENTS`` pull: ``(records, head, floor)`` from the journal."""
        if self.evjournal is None:
            raise ServeError(
                "bad-request",
                f"session {self.name!r} has no evolution journal; "
                "open it with journal=true to read events",
            )
        records = self.evjournal.read(max(0, int(cursor)), limit=limit)
        return records, self.evjournal.head, self.evjournal.floor

    def as_of(self, stride: int | None = None, time: float | None = None) -> dict:
        """``AS_OF`` time travel: full membership payload at a past stride."""
        if self.archive is None:
            raise ServeError(
                "bad-request",
                f"session {self.name!r} has no snapshot archive; "
                "open it with journal=true to time-travel",
            )
        try:
            return self.archive.as_of(stride=stride, time=time)
        except ArchiveError as exc:
            raise ServeError("bad-request", str(exc)) from exc

    # ------------------------------------------------------------- read side

    def require_healthy(self) -> None:
        """Raise when the writer has died (strict-policy fault etc.)."""
        if self.failed is not None:
            raise ServeError(
                "session-failed", f"session {self.name!r} failed: {self.failed}"
            )

    def stats(self) -> dict:
        """Operational counters for the ``STATS`` frame."""
        supervisor_stats = self.supervisor.stats
        payload = {
            "session": self.name,
            "stride": self.view.stride,
            "window_points": self.view.clustering.num_points,
            "clusters": self.view.clustering.num_clusters,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "backpressure": self.config.backpressure,
            "received": self.received,
            "ingested": self.ingested,
            "shed": self.shed,
            "rejected": self.rejected,
            "skipped_replay": self.skipped_replay,
            "queries": self.queries,
            "draining": self.draining,
            "drained": self.drained,
            "failed": self.failed,
            "restarts": self.restarts,
            "runtime": supervisor_stats.as_dict(),
            "config": self.config.as_dict(),
        }
        if self.wal is not None:
            payload["wal"] = self.wal.stats.as_dict()
            if self.wal_error is not None:
                payload["wal_error"] = self.wal_error
        if self.evjournal is not None:
            payload["journal"] = {
                **self.evjournal.stats.as_dict(),
                "head": self.evjournal.head,
                "floor": self.evjournal.floor,
                "subscribers": len(self._subscribers),
            }
            if self.journal_floor_pinned is not None:
                payload["journal"]["floor_pinned"] = self.journal_floor_pinned
            if self.journal_error is not None:
                payload["journal_error"] = self.journal_error
        if self.archive is not None:
            payload["archive"] = {
                "snapshots": len(self.archive.strides()),
                "every": self.archive.every,
            }
        if self.tracer is not None:
            payload["trace"] = self.tracer.aggregate.latency_summary()
        return payload
