"""One tenant's served pipeline: queue, writer task, published views.

A :class:`TenantSession` owns one
:class:`~repro.runtime.supervisor.Supervisor` (and therefore one DISC, one
window cursor, one input guard, one checkpoint store) and drives it from a
bounded :class:`asyncio.Queue` with a **single writer task** — the only code
that ever mutates clustering state. Producers enqueue through
:meth:`TenantSession.offer` under the session's admission policy
(``block`` / ``shed-oldest`` / ``reject``); readers are answered from
:attr:`TenantSession.view`, an immutable :class:`SessionView` the writer
swaps in atomically after every window advance (copy-on-publish). Because a
view is fully constructed before the single reference assignment, a reader
can never observe a half-advanced stride, and because reads touch only the
published view, they never contend with ingestion.
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterable

import math

from repro.common.config import WindowSpec
from repro.common.distance import squared_distance
from repro.common.errors import ConfigurationError, ReproError
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.store import NO_ID
from repro.datasets.io import MalformedRecord
from repro.runtime.chaos import RuntimeHooks
from repro.runtime.stats import RuntimeStats
from repro.runtime.supervisor import Supervisor
from repro.runtime.wal import WalError, WriteAheadLog
from repro.serve.config import SessionConfig
from repro.serve.protocol import ServeError

#: Queue sentinel telling the writer task to exit.
_CLOSE = object()


class _WalCompactionHooks(RuntimeHooks):
    """Garbage-collect WAL segments once a checkpoint covers them.

    The supervisor calls :meth:`after_checkpoint` right after the durable
    rename; at that instant the checkpoint's ``stream_offset`` equals
    ``stats.points_seen``, so every WAL record below it is redundant.
    """

    def __init__(self, session: "TenantSession") -> None:
        self.session = session

    def after_checkpoint(self, stride: int, path) -> None:
        wal = self.session.wal
        if wal is not None:
            wal.compact(self.session.supervisor.stats.points_seen)


class SessionView:
    """Immutable, point-in-time read surface of one tenant.

    Published by the writer once per window advance; every query of the
    serving layer is answered from the newest view without touching live
    clustering state.

    Attributes:
        stride: index of the window advance this view reflects (``-1``
            before the first advance).
        clustering: the :class:`~repro.common.snapshot.Clustering` snapshot.
        eps: the session's distance threshold (the ad-hoc classification
            radius).
        cores: ``(pid, coords, cluster_id)`` for every core point — the
            data behind nearest-core classification.
    """

    __slots__ = ("stride", "clustering", "eps", "cores")

    def __init__(
        self,
        stride: int,
        clustering: Clustering,
        eps: float,
        cores: tuple[tuple[int, tuple[float, ...], int], ...],
    ) -> None:
        self.stride = stride
        self.clustering = clustering
        self.eps = eps
        self.cores = cores

    @classmethod
    def empty(cls, eps: float) -> "SessionView":
        return cls(-1, Clustering({}, {}), eps, ())

    def membership(self, pid: int) -> dict:
        """Label + category of a tracked point (noise when unknown)."""
        return {
            "pid": pid,
            "stride": self.stride,
            "label": self.clustering.label_of(pid),
            "category": self.clustering.category_of(pid).value,
            "tracked": pid in self.clustering.categories,
        }

    def classify(self, coords: tuple[float, ...]) -> dict:
        """Label an ad-hoc point by its nearest core within ``eps``.

        The DBSCAN assignment rule for a hypothetical arrival: a point
        within ``eps`` of a core belongs to that core's cluster (nearest
        core wins here, making the answer deterministic); otherwise it is
        noise. The scan is linear over the core set — see
        ``docs/serving.md`` for capacity notes.
        """
        best_pid = None
        best_label = Clustering.NOISE_ID
        best_sq = None
        eps_sq = self.eps * self.eps
        for pid, core_coords, label in self.cores:
            if len(core_coords) != len(coords):
                continue
            sq = squared_distance(coords, core_coords)
            if sq <= eps_sq and (best_sq is None or sq < best_sq):
                best_pid, best_label, best_sq = pid, label, sq
        return {
            "stride": self.stride,
            "label": best_label,
            "nearest_core": best_pid,
            "distance": None if best_sq is None else math.sqrt(best_sq),
        }

    def snapshot_payload(self) -> dict:
        """The full-snapshot wire form (labels, categories, counts)."""
        clustering = self.clustering
        return {
            "stride": self.stride,
            "num_points": clustering.num_points,
            "num_clusters": clustering.num_clusters,
            "labels": {str(pid): cid for pid, cid in clustering.labels.items()},
            "categories": {
                str(pid): cat.value for pid, cat in clustering.categories.items()
            },
        }


class TenantSession:
    """One tenant: bounded ingest queue, single writer, published views.

    Args:
        name: tenant identifier (protocol ``session`` field).
        config: the session's :class:`~repro.serve.config.SessionConfig`.
        store: checkpoint directory (or ``None`` for a non-durable tenant).
        tracer: optional :class:`~repro.observability.trace.Tracer` for
            per-tenant stride traces / Prometheus metrics.
        journal: optional list collecting every raw item the writer fed to
            the pipeline, in order — the *post-admission* sequence. Tests
            use it to replay a served run through ``api.cluster_stream`` and
            prove byte-identical labels under every backpressure policy.
        wal: optional :class:`~repro.runtime.wal.WriteAheadLog`. When set,
            :meth:`offer` journals every admitted item *before* it is
            acknowledged (ACK ⇒ durable under ``fsync=always``), and
            :meth:`start` replays the WAL tail past the restored
            checkpoint's stream offset — a ``kill -9`` at any instant loses
            zero acknowledged points. A WAL demands the ``block`` policy:
            :meth:`offer` journals-then-enqueues, and the shedding policies
            drop *already journaled (and acked)* items from the queue, so a
            post-crash replay would resurrect points the pre-crash pipeline
            never fed and the restarted tenant's labels would silently
            diverge from a never-crashed run. ``SessionConfig`` enforces the
            rule for config-driven WALs; this constructor enforces it again
            for directly injected ``wal`` objects, which bypass the config.
    """

    def __init__(
        self,
        name: str,
        config: SessionConfig,
        *,
        store=None,
        tracer=None,
        journal: list | None = None,
        wal: WriteAheadLog | None = None,
    ) -> None:
        if wal is not None and config.backpressure != "block":
            raise ConfigurationError(
                f"session {name!r}: a write-ahead log requires the 'block' "
                f"backpressure policy, not {config.backpressure!r} — "
                "shed-oldest/reject drop items after they were journaled "
                "and acked, so WAL replay after a crash would resurrect "
                "points the live pipeline never processed"
            )
        self.name = name
        self.config = config
        self.tracer = tracer
        self.journal = journal
        self.wal = wal
        if tracer is not None and wal is not None:
            tracer.wal_source = wal
        self.supervisor = Supervisor(
            config.eps,
            config.tau,
            WindowSpec(window=config.window, stride=config.stride),
            store=store,
            checkpoint_every=config.checkpoint_every,
            index=config.index,
            time_based=config.time_based,
            policy=config.on_malformed,
            stats=RuntimeStats(),
            hooks=_WalCompactionHooks(self) if wal is not None else None,
            tracer=tracer,
        )
        self.view: SessionView = SessionView.empty(config.eps)
        self.draining = False
        self.drained = False
        self.failed: str | None = None
        self.received = 0  # raw items offered by producers
        self.shed = 0  # queued items dropped by shed-oldest
        self.rejected = 0  # items refused by reject (or while draining)
        self.skipped_replay = 0  # replayed prefix consumed after a resume
        self.ingested = 0  # items fed into the pipeline by the writer
        self.queries = 0
        self.restarts = 0  # supervised restarts of this tenant (service-set)
        self.wal_error: str | None = None  # last journalling failure, if any
        self.crashed = asyncio.Event()  # unexpected writer death (supervision)
        self.replay_offset = 0  # prefix length a resume asked us to swallow
        self._skip = 0  # replay prefix still to swallow (resume)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=config.queue_limit)
        self._writer: asyncio.Task | None = None

    # ------------------------------------------------------------- lifecycle

    def start(
        self, *, resume: bool | str = False, swallow_prefix: bool = True
    ) -> int:
        """Initialise (or restore) the pipeline and start the writer task.

        Returns the replay offset: how many leading raw stream items the
        restored state already covers — the checkpoint's stream offset plus
        every acknowledged item recovered from the write-ahead log past it.
        With ``swallow_prefix`` (the default, for full-server restarts) the
        session swallows exactly that many subsequent offers itself, so a
        producer simply re-sends the stream from the beginning after a
        crash. A supervised in-place restart passes ``False``: connected
        clients never saw the crash and keep sending *new* points only.
        """
        offset = self.supervisor.begin(resume=resume)
        replayed = 0
        if self.wal is not None:
            # The acknowledged tail the checkpoint does not cover. Feeding
            # it reconstructs exactly the pre-crash pipeline state: same
            # items, same order, same stride boundaries.
            try:
                for item in self.wal.replay(offset):
                    self.supervisor.feed(item)
                    if self.journal is not None:
                        self.journal.append(item)
                    replayed += 1
                    self.ingested += 1
            except ReproError as exc:
                # Deterministic re-failure (e.g. a journaled malformed
                # record under the strict policy): the session comes back
                # in the same failed state the crash left it in.
                self.failed = f"{type(exc).__name__}: {exc}"
        self.replay_offset = offset + replayed
        self._skip = self.replay_offset if swallow_prefix else 0
        if self.supervisor.stride > 0:
            # Restored mid-run: publish the recovered clustering so readers
            # see the resumed state before the first new advance.
            self._publish()
        self._writer = asyncio.get_running_loop().create_task(
            self._writer_loop(), name=f"serve-writer-{self.name}"
        )
        return self.replay_offset

    async def close(self) -> None:
        """Stop the writer task (does not checkpoint; see :meth:`drain`)."""
        if self._writer is None:
            return
        if not self._writer.done():
            await self._queue.put(_CLOSE)
        await self._writer
        self._writer = None

    # ------------------------------------------------------------- ingestion

    async def offer(
        self, items: Iterable[StreamPoint | MalformedRecord]
    ) -> dict:
        """Admit a batch of raw stream items under the session policy.

        Returns the admission outcome: ``accepted`` (enqueued, or swallowed
        as replayed prefix after a resume), ``shed``, ``rejected``, and the
        queue ``depth`` afterwards. With a write-ahead log every accepted
        item is journaled before enqueueing and the log is committed before
        this method returns — the acknowledgement implies durability under
        the configured fsync policy.
        """
        accepted = shed = rejected = 0
        journaled = 0
        policy = self.config.backpressure
        for item in items:
            self.received += 1
            if self.failed is not None or self.draining:
                rejected += 1
                continue
            if self._skip > 0:
                # Replay of a prefix the restored checkpoint already covers.
                self._skip -= 1
                self.skipped_replay += 1
                accepted += 1
                continue
            if self.wal is not None:
                # Journal-then-enqueue: an item the producer will see
                # acknowledged exists on disk (page cache at worst; the
                # commit below applies the fsync policy) before the
                # pipeline can touch it. A failed append (disk full, broken
                # log) refuses the item instead of acknowledging it.
                try:
                    self.wal.append(item)
                    journaled += 1
                except WalError as exc:
                    self.wal_error = str(exc)
                    rejected += 1
                    continue
            if policy == "block":
                await self._queue.put(item)
                accepted += 1
            elif policy == "shed-oldest":
                while self._queue.full():
                    try:
                        self._queue.get_nowait()
                    except asyncio.QueueEmpty:  # pragma: no cover - race-free
                        break
                    self._queue.task_done()
                    shed += 1
                self._queue.put_nowait(item)
                accepted += 1
            else:  # reject
                if self._queue.full():
                    rejected += 1
                else:
                    self._queue.put_nowait(item)
                    accepted += 1
        self.shed += shed
        self.rejected += rejected
        if self.wal is not None and journaled:
            try:
                self.wal.commit()  # the ACK boundary: durable per policy
            except OSError as exc:
                # The fsync itself failed: the batch is enqueued but its
                # durability cannot be promised — withhold the ack.
                self.wal_error = f"WAL commit failed: {exc}"
                raise ServeError(
                    "wal-error",
                    f"session {self.name!r} could not make the batch "
                    f"durable: {exc}",
                ) from exc
        result = {
            "accepted": accepted,
            "shed": shed,
            "rejected": rejected,
            "depth": self._queue.qsize(),
        }
        if self.wal_error is not None and rejected:
            result["wal_error"] = self.wal_error
        return result

    async def drain(self, *, flush_tail: bool = False) -> dict:
        """Stop admitting, flush the queue, take the final checkpoint.

        Args:
            flush_tail: also close the trailing partial stride
                (end-of-stream semantics, matching what
                ``api.cluster_stream`` does when its input ends). Leave
                ``False`` to drain for a restart: the partial batch is
                checkpointed as-is and the resumed session continues the
                stream exactly where it stopped.

        Returns ``{"stride", "ingested", "checkpointed"}``.
        """
        self.draining = True
        if self.failed is None:
            await self._queue.join()  # writer has fed everything enqueued
            if flush_tail and self.failed is None:
                if self.supervisor.finish():
                    self._publish()
            # The writer may have died on an item it dequeued during the
            # join; never checkpoint a failed session.
            path = None if self.failed else self.supervisor.final_checkpoint()
        else:
            path = None
        self.drained = True
        return {
            "stride": self.view.stride,
            "ingested": self.ingested,
            "checkpointed": path is not None,
        }

    # ------------------------------------------------------------- the writer

    async def _writer_loop(self) -> None:
        """The single writer: dequeue, feed, publish. Nothing else mutates."""
        while True:
            item = await self._queue.get()
            if item is _CLOSE:
                self._queue.task_done()
                return
            try:
                results = self.supervisor.feed(item)
            except ReproError as exc:
                self.failed = f"{type(exc).__name__}: {exc}"
                self._queue.task_done()
                self._discard_queue()
                return
            except Exception as exc:  # noqa: BLE001 - crash isolation
                # Anything that is not a policy-governed ReproError is an
                # unexpected crash: isolate the tenant and signal the
                # service supervisor, which restarts it from
                # checkpoint + WAL with backoff.
                self.failed = f"crashed: {type(exc).__name__}: {exc}"
                self._queue.task_done()
                self._discard_queue()
                self.crashed.set()
                return
            if self.journal is not None:
                self.journal.append(item)
            self.ingested += 1
            if results:
                self._publish()
            self._queue.task_done()
            if results:
                # A stride boundary is the natural scheduling point: let
                # pending readers observe the freshly published view before
                # the next batch of writes.
                await asyncio.sleep(0)

    def _discard_queue(self) -> None:
        """Unblock join()/producers after a writer failure."""
        while True:
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            self._queue.task_done()

    def _publish(self) -> None:
        """Build an immutable view from live state and swap it in atomically.

        Runs between strides in the writer task (or during start/drain, when
        the writer is idle), so it reads a quiescent clusterer. The view is
        complete before the single reference assignment below — the only
        "lock" the read path needs.
        """
        clusterer = self.supervisor.clusterer
        if clusterer is None:  # pragma: no cover - publish before begin()
            return
        clustering = clusterer.snapshot()
        state = clusterer.state
        arena = state.columnar() if hasattr(state, "columnar") else None
        if arena is not None:
            # Columnar fast path: one masked slice instead of a per-record
            # scan. live_slots() keeps insertion order, so the cores tuple is
            # ordered exactly like the record-dict iteration below — the
            # classify() nearest-core tie-break depends on it.
            slots = arena.live_slots()
            mask = (arena.n_eps[slots] >= state.params.tau) & (
                arena.cid[slots] != NO_ID
            )
            core_slots = slots[mask] if len(slots) else slots
            pids = arena.pid[core_slots].tolist()
            coords = arena.coords[core_slots].tolist()
            cores = tuple(
                (pid, tuple(row), clustering.label_of(pid))
                for pid, row in zip(pids, coords)
            )
        else:
            cores = tuple(
                (pid, rec.coords, clustering.label_of(pid))
                for pid, rec in state.records.items()
                if state.is_core(rec) and rec.cid is not None
            )
        self.view = SessionView(
            self.supervisor.stride - 1, clustering, self.config.eps, cores
        )

    # ------------------------------------------------------------- read side

    def require_healthy(self) -> None:
        """Raise when the writer has died (strict-policy fault etc.)."""
        if self.failed is not None:
            raise ServeError(
                "session-failed", f"session {self.name!r} failed: {self.failed}"
            )

    def stats(self) -> dict:
        """Operational counters for the ``STATS`` frame."""
        supervisor_stats = self.supervisor.stats
        payload = {
            "session": self.name,
            "stride": self.view.stride,
            "window_points": self.view.clustering.num_points,
            "clusters": self.view.clustering.num_clusters,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "backpressure": self.config.backpressure,
            "received": self.received,
            "ingested": self.ingested,
            "shed": self.shed,
            "rejected": self.rejected,
            "skipped_replay": self.skipped_replay,
            "queries": self.queries,
            "draining": self.draining,
            "drained": self.drained,
            "failed": self.failed,
            "restarts": self.restarts,
            "runtime": supervisor_stats.as_dict(),
            "config": self.config.as_dict(),
        }
        if self.wal is not None:
            payload["wal"] = self.wal.stats.as_dict()
            if self.wal_error is not None:
                payload["wal_error"] = self.wal_error
        if self.tracer is not None:
            payload["trace"] = self.tracer.aggregate.latency_summary()
        return payload
