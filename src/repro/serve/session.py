"""One tenant's served pipeline: queue, writer task, published views.

A :class:`TenantSession` owns one
:class:`~repro.runtime.supervisor.Supervisor` (and therefore one DISC, one
window cursor, one input guard, one checkpoint store) and drives it from a
bounded :class:`asyncio.Queue` with a **single writer task** — the only code
that ever mutates clustering state. Producers enqueue through
:meth:`TenantSession.offer` under the session's admission policy
(``block`` / ``shed-oldest`` / ``reject``); readers are answered from
:attr:`TenantSession.view`, an immutable :class:`SessionView` the writer
swaps in atomically after every window advance (copy-on-publish). Because a
view is fully constructed before the single reference assignment, a reader
can never observe a half-advanced stride, and because reads touch only the
published view, they never contend with ingestion.
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterable

import math

from repro.common.config import WindowSpec
from repro.common.distance import squared_distance
from repro.common.errors import ReproError
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.store import NO_ID
from repro.datasets.io import MalformedRecord
from repro.runtime.stats import RuntimeStats
from repro.runtime.supervisor import Supervisor
from repro.serve.config import SessionConfig
from repro.serve.protocol import ServeError

#: Queue sentinel telling the writer task to exit.
_CLOSE = object()


class SessionView:
    """Immutable, point-in-time read surface of one tenant.

    Published by the writer once per window advance; every query of the
    serving layer is answered from the newest view without touching live
    clustering state.

    Attributes:
        stride: index of the window advance this view reflects (``-1``
            before the first advance).
        clustering: the :class:`~repro.common.snapshot.Clustering` snapshot.
        eps: the session's distance threshold (the ad-hoc classification
            radius).
        cores: ``(pid, coords, cluster_id)`` for every core point — the
            data behind nearest-core classification.
    """

    __slots__ = ("stride", "clustering", "eps", "cores")

    def __init__(
        self,
        stride: int,
        clustering: Clustering,
        eps: float,
        cores: tuple[tuple[int, tuple[float, ...], int], ...],
    ) -> None:
        self.stride = stride
        self.clustering = clustering
        self.eps = eps
        self.cores = cores

    @classmethod
    def empty(cls, eps: float) -> "SessionView":
        return cls(-1, Clustering({}, {}), eps, ())

    def membership(self, pid: int) -> dict:
        """Label + category of a tracked point (noise when unknown)."""
        return {
            "pid": pid,
            "stride": self.stride,
            "label": self.clustering.label_of(pid),
            "category": self.clustering.category_of(pid).value,
            "tracked": pid in self.clustering.categories,
        }

    def classify(self, coords: tuple[float, ...]) -> dict:
        """Label an ad-hoc point by its nearest core within ``eps``.

        The DBSCAN assignment rule for a hypothetical arrival: a point
        within ``eps`` of a core belongs to that core's cluster (nearest
        core wins here, making the answer deterministic); otherwise it is
        noise. The scan is linear over the core set — see
        ``docs/serving.md`` for capacity notes.
        """
        best_pid = None
        best_label = Clustering.NOISE_ID
        best_sq = None
        eps_sq = self.eps * self.eps
        for pid, core_coords, label in self.cores:
            if len(core_coords) != len(coords):
                continue
            sq = squared_distance(coords, core_coords)
            if sq <= eps_sq and (best_sq is None or sq < best_sq):
                best_pid, best_label, best_sq = pid, label, sq
        return {
            "stride": self.stride,
            "label": best_label,
            "nearest_core": best_pid,
            "distance": None if best_sq is None else math.sqrt(best_sq),
        }

    def snapshot_payload(self) -> dict:
        """The full-snapshot wire form (labels, categories, counts)."""
        clustering = self.clustering
        return {
            "stride": self.stride,
            "num_points": clustering.num_points,
            "num_clusters": clustering.num_clusters,
            "labels": {str(pid): cid for pid, cid in clustering.labels.items()},
            "categories": {
                str(pid): cat.value for pid, cat in clustering.categories.items()
            },
        }


class TenantSession:
    """One tenant: bounded ingest queue, single writer, published views.

    Args:
        name: tenant identifier (protocol ``session`` field).
        config: the session's :class:`~repro.serve.config.SessionConfig`.
        store: checkpoint directory (or ``None`` for a non-durable tenant).
        tracer: optional :class:`~repro.observability.trace.Tracer` for
            per-tenant stride traces / Prometheus metrics.
        journal: optional list collecting every raw item the writer fed to
            the pipeline, in order — the *post-admission* sequence. Tests
            use it to replay a served run through ``api.cluster_stream`` and
            prove byte-identical labels under every backpressure policy.
    """

    def __init__(
        self,
        name: str,
        config: SessionConfig,
        *,
        store=None,
        tracer=None,
        journal: list | None = None,
    ) -> None:
        self.name = name
        self.config = config
        self.tracer = tracer
        self.journal = journal
        self.supervisor = Supervisor(
            config.eps,
            config.tau,
            WindowSpec(window=config.window, stride=config.stride),
            store=store,
            checkpoint_every=config.checkpoint_every,
            index=config.index,
            time_based=config.time_based,
            policy=config.on_malformed,
            stats=RuntimeStats(),
            tracer=tracer,
        )
        self.view: SessionView = SessionView.empty(config.eps)
        self.draining = False
        self.drained = False
        self.failed: str | None = None
        self.received = 0  # raw items offered by producers
        self.shed = 0  # queued items dropped by shed-oldest
        self.rejected = 0  # items refused by reject (or while draining)
        self.skipped_replay = 0  # replayed prefix consumed after a resume
        self.ingested = 0  # items fed into the pipeline by the writer
        self.queries = 0
        self.replay_offset = 0  # prefix length a resume asked us to swallow
        self._skip = 0  # replay prefix still to swallow (resume)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=config.queue_limit)
        self._writer: asyncio.Task | None = None

    # ------------------------------------------------------------- lifecycle

    def start(self, *, resume: bool | str = False) -> int:
        """Initialise (or restore) the pipeline and start the writer task.

        Returns the replay offset: how many leading raw stream items the
        restored checkpoint already covers. The session swallows exactly
        that many subsequent offers itself, so a producer simply re-sends
        the stream from the beginning after a crash.
        """
        offset = self.supervisor.begin(resume=resume)
        self.replay_offset = offset
        self._skip = offset
        if self.supervisor.stride > 0:
            # Restored mid-run: publish the checkpointed clustering so
            # readers see the resumed state before the first new advance.
            self._publish()
        self._writer = asyncio.get_running_loop().create_task(
            self._writer_loop(), name=f"serve-writer-{self.name}"
        )
        return offset

    async def close(self) -> None:
        """Stop the writer task (does not checkpoint; see :meth:`drain`)."""
        if self._writer is None:
            return
        if not self._writer.done():
            await self._queue.put(_CLOSE)
        await self._writer
        self._writer = None

    # ------------------------------------------------------------- ingestion

    async def offer(
        self, items: Iterable[StreamPoint | MalformedRecord]
    ) -> dict:
        """Admit a batch of raw stream items under the session policy.

        Returns the admission outcome: ``accepted`` (enqueued, or swallowed
        as replayed prefix after a resume), ``shed``, ``rejected``, and the
        queue ``depth`` afterwards.
        """
        accepted = shed = rejected = 0
        policy = self.config.backpressure
        for item in items:
            self.received += 1
            if self.failed is not None or self.draining:
                rejected += 1
                continue
            if self._skip > 0:
                # Replay of a prefix the restored checkpoint already covers.
                self._skip -= 1
                self.skipped_replay += 1
                accepted += 1
                continue
            if policy == "block":
                await self._queue.put(item)
                accepted += 1
            elif policy == "shed-oldest":
                while self._queue.full():
                    try:
                        self._queue.get_nowait()
                    except asyncio.QueueEmpty:  # pragma: no cover - race-free
                        break
                    self._queue.task_done()
                    shed += 1
                self._queue.put_nowait(item)
                accepted += 1
            else:  # reject
                if self._queue.full():
                    rejected += 1
                else:
                    self._queue.put_nowait(item)
                    accepted += 1
        self.shed += shed
        self.rejected += rejected
        return {
            "accepted": accepted,
            "shed": shed,
            "rejected": rejected,
            "depth": self._queue.qsize(),
        }

    async def drain(self, *, flush_tail: bool = False) -> dict:
        """Stop admitting, flush the queue, take the final checkpoint.

        Args:
            flush_tail: also close the trailing partial stride
                (end-of-stream semantics, matching what
                ``api.cluster_stream`` does when its input ends). Leave
                ``False`` to drain for a restart: the partial batch is
                checkpointed as-is and the resumed session continues the
                stream exactly where it stopped.

        Returns ``{"stride", "ingested", "checkpointed"}``.
        """
        self.draining = True
        if self.failed is None:
            await self._queue.join()  # writer has fed everything enqueued
            if flush_tail and self.failed is None:
                if self.supervisor.finish():
                    self._publish()
            # The writer may have died on an item it dequeued during the
            # join; never checkpoint a failed session.
            path = None if self.failed else self.supervisor.final_checkpoint()
        else:
            path = None
        self.drained = True
        return {
            "stride": self.view.stride,
            "ingested": self.ingested,
            "checkpointed": path is not None,
        }

    # ------------------------------------------------------------- the writer

    async def _writer_loop(self) -> None:
        """The single writer: dequeue, feed, publish. Nothing else mutates."""
        while True:
            item = await self._queue.get()
            if item is _CLOSE:
                self._queue.task_done()
                return
            try:
                results = self.supervisor.feed(item)
            except ReproError as exc:
                self.failed = f"{type(exc).__name__}: {exc}"
                self._queue.task_done()
                self._discard_queue()
                return
            if self.journal is not None:
                self.journal.append(item)
            self.ingested += 1
            if results:
                self._publish()
            self._queue.task_done()
            if results:
                # A stride boundary is the natural scheduling point: let
                # pending readers observe the freshly published view before
                # the next batch of writes.
                await asyncio.sleep(0)

    def _discard_queue(self) -> None:
        """Unblock join()/producers after a writer failure."""
        while True:
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            self._queue.task_done()

    def _publish(self) -> None:
        """Build an immutable view from live state and swap it in atomically.

        Runs between strides in the writer task (or during start/drain, when
        the writer is idle), so it reads a quiescent clusterer. The view is
        complete before the single reference assignment below — the only
        "lock" the read path needs.
        """
        clusterer = self.supervisor.clusterer
        if clusterer is None:  # pragma: no cover - publish before begin()
            return
        clustering = clusterer.snapshot()
        state = clusterer.state
        arena = state.columnar() if hasattr(state, "columnar") else None
        if arena is not None:
            # Columnar fast path: one masked slice instead of a per-record
            # scan. live_slots() keeps insertion order, so the cores tuple is
            # ordered exactly like the record-dict iteration below — the
            # classify() nearest-core tie-break depends on it.
            slots = arena.live_slots()
            mask = (arena.n_eps[slots] >= state.params.tau) & (
                arena.cid[slots] != NO_ID
            )
            core_slots = slots[mask] if len(slots) else slots
            pids = arena.pid[core_slots].tolist()
            coords = arena.coords[core_slots].tolist()
            cores = tuple(
                (pid, tuple(row), clustering.label_of(pid))
                for pid, row in zip(pids, coords)
            )
        else:
            cores = tuple(
                (pid, rec.coords, clustering.label_of(pid))
                for pid, rec in state.records.items()
                if state.is_core(rec) and rec.cid is not None
            )
        self.view = SessionView(
            self.supervisor.stride - 1, clustering, self.config.eps, cores
        )

    # ------------------------------------------------------------- read side

    def require_healthy(self) -> None:
        """Raise when the writer has died (strict-policy fault etc.)."""
        if self.failed is not None:
            raise ServeError(
                "session-failed", f"session {self.name!r} failed: {self.failed}"
            )

    def stats(self) -> dict:
        """Operational counters for the ``STATS`` frame."""
        supervisor_stats = self.supervisor.stats
        payload = {
            "session": self.name,
            "stride": self.view.stride,
            "window_points": self.view.clustering.num_points,
            "clusters": self.view.clustering.num_clusters,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "backpressure": self.config.backpressure,
            "received": self.received,
            "ingested": self.ingested,
            "shed": self.shed,
            "rejected": self.rejected,
            "skipped_replay": self.skipped_replay,
            "queries": self.queries,
            "draining": self.draining,
            "drained": self.drained,
            "failed": self.failed,
            "runtime": supervisor_stats.as_dict(),
            "config": self.config.as_dict(),
        }
        if self.tracer is not None:
            payload["trace"] = self.tracer.aggregate.latency_summary()
        return payload
