"""Per-tenant session configuration for the serving layer.

A :class:`SessionConfig` is everything needed to (re)build one tenant's
pipeline: the clustering thresholds, the window specification, the index
backend *name* (instances cannot be resumed from disk), the input-fault
policy, and the ingest-side admission controls. It round-trips through JSON
(:meth:`SessionConfig.as_dict` / :meth:`SessionConfig.from_dict`) because the
service persists it next to the tenant's checkpoints so a restarted server
can resurrect every session without the client re-sending its ``OPEN``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.common.errors import ConfigurationError
from repro.runtime.wal import FSYNC_POLICIES

#: Admission-control policies applied when producers outrun the stride loop.
#:
#: - ``block``: the ``INGEST`` reply is withheld until queue space frees up —
#:   classic backpressure propagated to the producer over TCP.
#: - ``shed-oldest``: the oldest queued (not yet clustered) point is dropped
#:   to make room; the reply reports how many were shed.
#: - ``reject``: new points are refused while the queue is full; the reply
#:   reports how many were rejected so the producer can retry.
BACKPRESSURE_POLICIES = ("block", "shed-oldest", "reject")


@dataclass(frozen=True)
class SessionConfig:
    """Everything defining one tenant's pipeline and admission behaviour.

    Args:
        eps, tau: DBSCAN thresholds.
        window, stride: sliding-window sizes (counts, or durations when
            ``time_based``).
        time_based: interpret the window spec as durations over timestamps.
        index: spatial-index backend name from the registry, or ``None``
            for the default.
        on_malformed: input-fault policy (``strict`` / ``skip`` / ``clamp``).
        backpressure: one of :data:`BACKPRESSURE_POLICIES`.
        queue_limit: bounded ingest-queue capacity (points).
        checkpoint_every: strides between durable checkpoints.
        wal: journal every admitted item to a per-tenant write-ahead log
            before acknowledging it (requires the ``block`` policy — the
            shedding policies drop items *after* the ack, so the journal
            could not mirror the fed sequence).
        wal_fsync: WAL durability policy
            (:data:`repro.runtime.wal.FSYNC_POLICIES`).
        wal_fsync_every: records per fsync under ``every_n``.
        wal_fsync_interval_s: seconds between fsyncs under ``interval``.
        wal_segment_bytes: WAL segment rotation threshold.
        journal: record every stride's evolution events + membership delta
            to a per-tenant CDC journal (the feed behind ``SUBSCRIBE`` /
            ``EVENTS``). Works under any backpressure policy — it journals
            *derived* strides, not admissions.
        journal_fsync: journal durability policy
            (:data:`repro.runtime.wal.FSYNC_POLICIES`). Under ``always``
            a stride's events are durable before its ingest ack leaves.
        journal_segment_bytes: journal segment rotation threshold.
        journal_retention: strides of CDC history to retain (``0`` =
            unbounded). Compaction runs at checkpoint boundaries and never
            cuts history an archive snapshot still needs for delta replay.
        archive_every: strides between full membership snapshots for
            ``AS_OF`` time travel (``0`` disables; requires ``journal``).
    """

    eps: float
    tau: int
    window: int
    stride: int
    time_based: bool = False
    index: str | None = None
    on_malformed: str = "strict"
    backpressure: str = "block"
    queue_limit: int = 2048
    checkpoint_every: int = 16
    wal: bool = False
    wal_fsync: str = "always"
    wal_fsync_every: int = 64
    wal_fsync_interval_s: float = 0.05
    wal_segment_bytes: int = 4 * 1024 * 1024
    journal: bool = False
    journal_fsync: str = "always"
    journal_segment_bytes: int = 1 * 1024 * 1024
    journal_retention: int = 0
    archive_every: int = 0

    def __post_init__(self) -> None:
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if self.on_malformed not in ("strict", "skip", "clamp"):
            raise ConfigurationError(
                f"unknown input-fault policy {self.on_malformed!r}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.index is not None and not isinstance(self.index, str):
            raise ConfigurationError(
                "a served session needs a registry index *name* (or None) "
                f"so checkpoints can be restored; got {self.index!r}"
            )
        if self.wal_fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown WAL fsync policy {self.wal_fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if self.wal_fsync_every < 1:
            raise ConfigurationError(
                f"wal_fsync_every must be >= 1, got {self.wal_fsync_every}"
            )
        if self.wal_segment_bytes < 1:
            raise ConfigurationError(
                f"wal_segment_bytes must be >= 1, got {self.wal_segment_bytes}"
            )
        if self.wal and self.backpressure != "block":
            raise ConfigurationError(
                "the write-ahead log requires the 'block' backpressure "
                "policy: shed-oldest/reject drop items after they were "
                f"acknowledged, so a journal under {self.backpressure!r} "
                "could not guarantee ACK => durable (see docs/serving.md)"
            )
        if self.journal_fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown journal fsync policy {self.journal_fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if self.journal_segment_bytes < 1:
            raise ConfigurationError(
                "journal_segment_bytes must be >= 1, "
                f"got {self.journal_segment_bytes}"
            )
        if self.journal_retention < 0:
            raise ConfigurationError(
                f"journal_retention must be >= 0, got {self.journal_retention}"
            )
        if self.archive_every < 0:
            raise ConfigurationError(
                f"archive_every must be >= 0, got {self.archive_every}"
            )
        if self.archive_every > 0 and not self.journal:
            raise ConfigurationError(
                "archive_every requires the evolution journal: AS_OF "
                "answers replay journal deltas between snapshots"
            )

    def as_dict(self) -> dict:
        """JSON-friendly form (session metadata / ``OPEN`` payload)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SessionConfig":
        """Rebuild a config from :meth:`as_dict` output; validates fields."""
        try:
            return cls(
                eps=float(payload["eps"]),
                tau=int(payload["tau"]),
                window=int(payload["window"]),
                stride=int(payload["stride"]),
                time_based=bool(payload.get("time_based", False)),
                index=payload.get("index"),
                on_malformed=str(payload.get("on_malformed", "strict")),
                backpressure=str(payload.get("backpressure", "block")),
                queue_limit=int(payload.get("queue_limit", 2048)),
                checkpoint_every=int(payload.get("checkpoint_every", 16)),
                wal=bool(payload.get("wal", False)),
                wal_fsync=str(payload.get("wal_fsync", "always")),
                wal_fsync_every=int(payload.get("wal_fsync_every", 64)),
                wal_fsync_interval_s=float(
                    payload.get("wal_fsync_interval_s", 0.05)
                ),
                wal_segment_bytes=int(
                    payload.get("wal_segment_bytes", 4 * 1024 * 1024)
                ),
                journal=bool(payload.get("journal", False)),
                journal_fsync=str(payload.get("journal_fsync", "always")),
                journal_segment_bytes=int(
                    payload.get("journal_segment_bytes", 1 * 1024 * 1024)
                ),
                journal_retention=int(payload.get("journal_retention", 0)),
                archive_every=int(payload.get("archive_every", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed session config: {exc}") from exc
