"""Per-tenant session configuration for the serving layer.

A :class:`SessionConfig` is everything needed to (re)build one tenant's
pipeline: the clustering thresholds, the window specification, the index
backend *name* (instances cannot be resumed from disk), the input-fault
policy, and the ingest-side admission controls. It round-trips through JSON
(:meth:`SessionConfig.as_dict` / :meth:`SessionConfig.from_dict`) because the
service persists it next to the tenant's checkpoints so a restarted server
can resurrect every session without the client re-sending its ``OPEN``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.common.errors import ConfigurationError

#: Admission-control policies applied when producers outrun the stride loop.
#:
#: - ``block``: the ``INGEST`` reply is withheld until queue space frees up —
#:   classic backpressure propagated to the producer over TCP.
#: - ``shed-oldest``: the oldest queued (not yet clustered) point is dropped
#:   to make room; the reply reports how many were shed.
#: - ``reject``: new points are refused while the queue is full; the reply
#:   reports how many were rejected so the producer can retry.
BACKPRESSURE_POLICIES = ("block", "shed-oldest", "reject")


@dataclass(frozen=True)
class SessionConfig:
    """Everything defining one tenant's pipeline and admission behaviour.

    Args:
        eps, tau: DBSCAN thresholds.
        window, stride: sliding-window sizes (counts, or durations when
            ``time_based``).
        time_based: interpret the window spec as durations over timestamps.
        index: spatial-index backend name from the registry, or ``None``
            for the default.
        on_malformed: input-fault policy (``strict`` / ``skip`` / ``clamp``).
        backpressure: one of :data:`BACKPRESSURE_POLICIES`.
        queue_limit: bounded ingest-queue capacity (points).
        checkpoint_every: strides between durable checkpoints.
    """

    eps: float
    tau: int
    window: int
    stride: int
    time_based: bool = False
    index: str | None = None
    on_malformed: str = "strict"
    backpressure: str = "block"
    queue_limit: int = 2048
    checkpoint_every: int = 16

    def __post_init__(self) -> None:
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if self.on_malformed not in ("strict", "skip", "clamp"):
            raise ConfigurationError(
                f"unknown input-fault policy {self.on_malformed!r}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.index is not None and not isinstance(self.index, str):
            raise ConfigurationError(
                "a served session needs a registry index *name* (or None) "
                f"so checkpoints can be restored; got {self.index!r}"
            )

    def as_dict(self) -> dict:
        """JSON-friendly form (session metadata / ``OPEN`` payload)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SessionConfig":
        """Rebuild a config from :meth:`as_dict` output; validates fields."""
        try:
            return cls(
                eps=float(payload["eps"]),
                tau=int(payload["tau"]),
                window=int(payload["window"]),
                stride=int(payload["stride"]),
                time_based=bool(payload.get("time_based", False)),
                index=payload.get("index"),
                on_malformed=str(payload.get("on_malformed", "strict")),
                backpressure=str(payload.get("backpressure", "block")),
                queue_limit=int(payload.get("queue_limit", 2048)),
                checkpoint_every=int(payload.get("checkpoint_every", 16)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed session config: {exc}") from exc
