"""The front-end router of a sharded deployment (``repro serve --shards N``).

The router owns the TCP listener and speaks the *unchanged* JSON-lines
protocol; clients cannot tell a sharded deployment from a single-process
one. Every frame carrying a ``session`` field is proxied — raw line in, raw
line out, no re-encoding — to the worker that owns the tenant
(:func:`repro.serve.shard.place` on the tenant name) over a per-shard
Unix-domain socket. Because the protocol is strict request/response per
connection, proxying preserves ordering and backpressure for free: when a
``block``-policy tenant's queue is full, the worker withholds the reply,
the router's await parks, and the client's socket stops being read —
exactly the chain the in-process server produces.

Only two frames are answered by the router itself:

- a session-less ``STATS`` aggregates every worker's stats plus the
  router's supervision view (per-shard pid/rss/tenants/restarts);
- frames addressed to a shard whose circuit is open (or whose worker is
  mid-restart) get a ``shard-unavailable`` error envelope instead of a
  hang — co-resident shards keep serving.

``SUBSCRIBE`` is proxied like everything else, but a success envelope
flips the upstream socket it travelled on into *streaming mode*: a pump
task copies every worker line verbatim to the client until the worker
sends the terminal end frame. The connection cache hands later requests
for that shard a fresh socket, so pushes and responses never interleave
upstream. If the worker dies mid-subscription the router synthesizes
``{"push": "end", "reason": "shard-unavailable", "cursor": null}`` —
the client resumes from its own counted cursor once the shard returns.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys

from repro._version import __version__
from repro.serve import protocol
from repro.serve.shard import ShardWorker, ShardedClusterService

_RETRIES = 2  # fresh-connection attempts per forwarded frame


class _Upstreams:
    """One client connection's cached per-shard upstream connections."""

    def __init__(self, sharded: ShardedClusterService) -> None:
        self.sharded = sharded
        self._conns: dict[int, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}

    async def forward(self, worker: ShardWorker, line: bytes) -> bytes | None:
        """Send one raw frame line to a worker, return its raw reply line.

        Returns ``None`` when the worker cannot be reached (dead, circuit
        open, restarting) or hangs up mid-request — the caller turns that
        into a ``shard-unavailable`` envelope. A cached connection that
        turns out to be stale (the worker restarted behind it) is dropped
        and retried once on a fresh socket.
        """
        for _ in range(_RETRIES):
            conn = self._conns.get(worker.index)
            if conn is None:
                try:
                    conn = await self.sharded.connect(worker)
                except OSError:
                    return None
                self._conns[worker.index] = conn
            reader, writer = conn
            try:
                writer.write(line)
                await writer.drain()
                reply = await reader.readline()
            except (OSError, asyncio.IncompleteReadError):
                reply = b""
            if reply:
                return reply
            await self._drop(worker.index)
        return None

    def steal(self, index: int):
        """Detach a shard's cached connection (streaming-mode handoff).

        The caller owns the returned ``(reader, writer)`` pair; the next
        request for this shard gets a fresh socket.
        """
        return self._conns.pop(index, None)

    async def _drop(self, index: int) -> None:
        conn = self._conns.pop(index, None)
        if conn is not None:
            conn[1].close()
            try:
                await conn[1].wait_closed()
            except OSError:  # pragma: no cover - close races
                pass

    async def close(self) -> None:
        for index in list(self._conns):
            await self._drop(index)


async def _write_raw(writer, wlock: asyncio.Lock, line: bytes) -> None:
    """Write one raw line to the client under the connection write lock."""
    async with wlock:
        writer.write(line)
        await writer.drain()


def _frame_ok(raw: bytes) -> bool:
    try:
        frame = json.loads(raw)
    except ValueError:  # pragma: no cover - worker always sends JSON
        return False
    return isinstance(frame, dict) and bool(frame.get("ok"))


async def _stream_pump(conn, writer, wlock: asyncio.Lock, name: str) -> None:
    """Copy one streaming upstream verbatim to the client.

    Runs from an ok'd ``SUBSCRIBE`` until the worker's terminal end frame.
    A worker death mid-subscription becomes a synthesized end frame with
    ``reason: shard-unavailable`` so the client knows to resubscribe (from
    its own counted cursor) once the supervisor brings the shard back.
    """
    upstream_reader, upstream_writer = conn
    try:
        while True:
            line = await upstream_reader.readline()
            if not line:
                await _write_raw(
                    writer,
                    wlock,
                    protocol.encode_frame(
                        {
                            "push": "end",
                            "session": name,
                            "reason": "shard-unavailable",
                            "cursor": None,
                        }
                    ),
                )
                return
            await _write_raw(writer, wlock, line)
            try:
                frame = json.loads(line)
            except ValueError:  # pragma: no cover - worker always sends JSON
                continue
            if isinstance(frame, dict) and frame.get("push") == "end":
                return
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    finally:
        upstream_writer.close()
        try:
            await upstream_writer.wait_closed()
        except OSError:  # pragma: no cover - close races
            pass


def _shard_unavailable(worker: ShardWorker, rid) -> dict:
    state = worker.degraded or ("down" if not worker.alive else "unreachable")
    return protocol.error_response(
        "shard-unavailable",
        f"shard-{worker.index} is {state}; its tenants are temporarily "
        "unavailable (co-resident shards keep serving)",
        rid,
    )


async def handle_proxy_connection(
    sharded: ShardedClusterService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection: route frames, preserve strict ordering.

    An ok'd ``SUBSCRIBE`` detaches its upstream socket into a pump task
    (see :func:`_stream_pump`); push frames from pumps and responses from
    this loop share the client socket under one write lock.
    """
    upstreams = _Upstreams(sharded)
    wlock = asyncio.Lock()
    pumps: set[asyncio.Task] = set()
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await _write_raw(
                    writer,
                    wlock,
                    protocol.encode_frame(
                        protocol.error_response(
                            "bad-frame", "frame exceeds the line limit"
                        )
                    ),
                )
                break
            if not line:
                break  # client hung up
            if line.strip() == b"":
                continue
            response = None
            try:
                frame = protocol.decode_frame(line)
            except protocol.ProtocolError as exc:
                response = protocol.error_response(exc.code, str(exc))
            else:
                rid = frame.get("id")
                op = frame.get("op")
                name = frame.get("session")
                if op not in protocol.OPS:
                    response = protocol.error_response(
                        "unknown-op",
                        f"unknown op {op!r}; expected one of {protocol.OPS}",
                        rid,
                    )
                elif op == "STATS" and name is None:
                    response = protocol.ok_response(op, rid, **await sharded.stats())
                elif not isinstance(name, str) or not name:
                    response = protocol.error_response(
                        "bad-request",
                        f"frame needs a string 'session' field, got {name!r}",
                        rid,
                    )
                else:
                    worker = sharded.shard_for(name)
                    if worker.degraded == "circuit-open":
                        response = _shard_unavailable(worker, rid)
                    else:
                        raw = await upstreams.forward(worker, line)
                        if raw is None:
                            response = _shard_unavailable(worker, rid)
                        else:
                            await _write_raw(writer, wlock, raw)  # verbatim
                            if op == "SUBSCRIBE" and _frame_ok(raw):
                                conn = upstreams.steal(worker.index)
                                if conn is not None:
                                    task = asyncio.create_task(
                                        _stream_pump(conn, writer, wlock, name)
                                    )
                                    pumps.add(task)
                                    task.add_done_callback(pumps.discard)
                            continue
            await _write_raw(writer, wlock, protocol.encode_frame(response))
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        for task in list(pumps):
            task.cancel()
        if pumps:
            await asyncio.gather(*pumps, return_exceptions=True)
        await upstreams.close()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def run_router(
    sharded: ShardedClusterService,
    host: str = "127.0.0.1",
    port: int = 7171,
    *,
    resume: bool = False,
    ready: asyncio.Event | None = None,
    stop: asyncio.Event | None = None,
) -> None:
    """Run the sharded front end until stopped, then drain every worker.

    Mirrors :func:`repro.serve.server.run_server` — same ready line, same
    signal handling — so drills and harnesses work against either.
    """
    from repro.serve.server import _STREAM_LIMIT

    await sharded.start(resume=resume)
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    server = await asyncio.start_server(
        lambda r, w: handle_proxy_connection(sharded, r, w),
        host,
        port,
        limit=_STREAM_LIMIT,
    )
    bound_port = server.sockets[0].getsockname()[1]
    sharded.port = bound_port
    print(
        f"serve: listening on {host}:{bound_port} "
        f"(repro {__version__}, {sharded.shards} shard(s))",
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        async with server:
            await stop.wait()
            server.close()
            await server.wait_closed()
    finally:
        await sharded.stop()
    print(f"serve: stopped {sharded.shards} shard worker(s)", flush=True)


def main(args) -> int:
    """Entry point behind ``repro serve --shards N`` (N >= 1)."""
    sharded = ShardedClusterService(
        args.shards,
        data_dir=args.data_dir,
        metrics_dir=args.metrics_dir,
        trace_dir=args.trace_dir,
        restart_budget=args.restart_budget,
        restart_backoff_s=args.restart_backoff,
        restart_reset_s=args.restart_reset,
    )
    try:
        asyncio.run(
            run_router(sharded, args.host, args.port, resume=args.resume)
        )
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    except (RuntimeError, OSError) as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 1
    return 0
