"""``repro.serve`` — a multi-tenant streaming clustering service.

The serving layer hosts many independent tenant *sessions*, each owning one
:class:`~repro.runtime.supervisor.Supervisor`-driven DISC pipeline fed from a
bounded ingest queue by a single writer task. Reads (point membership,
ad-hoc nearest-core classification, full snapshots, stats) are answered from
an immutable :class:`~repro.serve.session.SessionView` published once per
window advance — DISC's per-stride update model means queries never observe
a half-advanced stride and never block ingestion.

Modules:

- :mod:`repro.serve.config` — per-tenant session configuration.
- :mod:`repro.serve.session` — the tenant session: queue, backpressure,
  single-writer loop, copy-on-publish views, drain.
- :mod:`repro.serve.service` — the tenant registry: open/resume/drain/close,
  durable session metadata, per-tenant observability sinks, write-ahead
  logs, and self-healing session supervision (crash isolation, restart
  with backoff, circuit breaker).
- :mod:`repro.serve.protocol` — the stdlib-only JSON-lines TCP protocol.
- :mod:`repro.serve.server` — the asyncio TCP server (``repro serve``).
- :mod:`repro.serve.shard` — tenant placement (consistent hashing) and the
  shard worker processes of a ``--shards N`` deployment.
- :mod:`repro.serve.router` — the sharded front end: one TCP listener
  proxying frames to per-shard Unix-socket workers, with worker
  supervision mirroring the per-tenant circuit breaker.
- :mod:`repro.serve.client` — the asyncio client used by tests and loadgen.
- :mod:`repro.serve.loadgen` — the load generator (``repro loadgen``).

See ``docs/serving.md`` for the protocol frames, backpressure policies and
durability semantics.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.config import BACKPRESSURE_POLICIES, SessionConfig
from repro.serve.protocol import ProtocolError, ServeError
from repro.serve.service import ClusterService
from repro.serve.session import SessionView, TenantSession
from repro.serve.shard import ShardedClusterService, place

__all__ = [
    "BACKPRESSURE_POLICIES",
    "ClusterService",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "SessionConfig",
    "SessionView",
    "ShardedClusterService",
    "TenantSession",
    "place",
]
