"""Asyncio client for the serving protocol (used by loadgen and tests).

One :class:`ServeClient` wraps one TCP connection and speaks strict
request/response: every method sends a frame and awaits its envelope. By
default a server-side error envelope raises :class:`ServeClientError`
(carrying the protocol error code); pass ``check=False`` to
:meth:`ServeClient.request` to receive the raw envelope instead.

``SUBSCRIBE`` breaks the request/response rhythm: after
:meth:`ServeClient.subscribe` succeeds, the server interleaves push
frames on this connection. Consume them with :meth:`ServeClient.pushes`
(an async iterator that ends on the terminal ``{"push": "end"}`` frame);
a connection with a live subscription should be dedicated to it — issuing
further requests would race the demultiplexing.
"""

from __future__ import annotations

import asyncio

from repro.common.errors import ReproError
from repro.serve import protocol


class ServeClientError(ReproError):
    """An error envelope returned by the server.

    Attributes:
        code: the protocol error code (see
            :data:`repro.serve.protocol.ERROR_CODES`).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """One connection to a serve endpoint.

    Build with :meth:`connect`::

        client = await ServeClient.connect("127.0.0.1", 7171)
        await client.open_session("tenant-a", config)
        await client.ingest("tenant-a", points)
        reply = await client.query_coords("tenant-a", (0.4, 1.2))
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 7171
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_FRAME_BYTES + 1024
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # --------------------------------------------------------------- framing

    async def request(self, frame: dict, *, check: bool = True) -> dict:
        """Send one frame, await its envelope.

        Args:
            frame: the request (an ``id`` is added when absent).
            check: raise :class:`ServeClientError` on an error envelope
                instead of returning it.
        """
        if "id" not in frame:
            self._next_id += 1
            frame = {**frame, "id": self._next_id}
        self._writer.write(protocol.encode_frame(frame))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServeClientError("internal", "server closed the connection")
        response = protocol.decode_frame(line)
        if check and not response.get("ok"):
            error = response.get("error") or {}
            raise ServeClientError(
                error.get("code", "internal"),
                error.get("message", "unknown server error"),
            )
        return response

    # ------------------------------------------------------------------- ops

    async def open_session(
        self, name: str, config, *, resume: bool | str = "auto"
    ) -> dict:
        payload = config.as_dict() if hasattr(config, "as_dict") else dict(config)
        return await self.request(
            {"op": "OPEN", "session": name, "config": payload, "resume": resume}
        )

    async def ingest(self, name: str, points, *, check: bool = True) -> dict:
        return await self.request(
            {
                "op": "INGEST",
                "session": name,
                "points": protocol.encode_points(points),
            },
            check=check,
        )

    async def query_pid(self, name: str, pid: int) -> dict:
        return await self.request({"op": "QUERY", "session": name, "pid": pid})

    async def query_coords(self, name: str, coords) -> dict:
        return await self.request(
            {"op": "QUERY", "session": name, "coords": list(coords)}
        )

    async def snapshot(self, name: str) -> dict:
        return await self.request({"op": "SNAPSHOT", "session": name})

    async def query_as_of(
        self,
        name: str,
        *,
        stride: int | None = None,
        time: float | None = None,
        pid: int | None = None,
    ) -> dict:
        """Time-travel query: full membership (or one pid) at a past stride."""
        as_of: dict = {}
        if stride is not None:
            as_of["stride"] = stride
        if time is not None:
            as_of["time"] = time
        frame = {"op": "QUERY", "session": name, "as_of": as_of}
        if pid is not None:
            frame["pid"] = pid
        return await self.request(frame)

    async def events(
        self, name: str, cursor: int = 0, *, limit: int | None = None
    ) -> dict:
        """Pull journaled CDC records from ``cursor`` (cursor-paged)."""
        frame = {"op": "EVENTS", "session": name, "cursor": cursor}
        if limit is not None:
            frame["limit"] = limit
        return await self.request(frame)

    async def subscribe(
        self,
        name: str,
        *,
        cursor: int = 0,
        policy: str | None = None,
        queue_limit: int | None = None,
    ) -> dict:
        """Start a push subscription; read frames with :meth:`pushes`."""
        frame = {"op": "SUBSCRIBE", "session": name, "cursor": cursor}
        if policy is not None:
            frame["policy"] = policy
        if queue_limit is not None:
            frame["queue_limit"] = queue_limit
        return await self.request(frame)

    async def pushes(self):
        """Yield push frames until the terminal ``end`` frame (inclusive).

        The iterator yields every ``{"push": "event", ...}`` frame and
        finally the ``{"push": "end", ...}`` frame itself, so the caller
        can read the stop reason and resume cursor.
        """
        while True:
            line = await self._reader.readline()
            if not line:
                raise ServeClientError(
                    "internal", "server closed the connection mid-subscription"
                )
            frame = protocol.decode_frame(line)
            if "push" not in frame:
                raise ServeClientError(
                    "internal",
                    f"expected a push frame on this connection, got {frame!r}",
                )
            yield frame
            if frame["push"] == "end":
                return

    async def stats(self, name: str | None = None) -> dict:
        frame = {"op": "STATS"}
        if name is not None:
            frame["session"] = name
        return await self.request(frame)

    async def drain(self, name: str, *, flush_tail: bool = False) -> dict:
        return await self.request(
            {"op": "DRAIN", "session": name, "flush_tail": flush_tail}
        )

    async def close_session(self, name: str) -> dict:
        return await self.request({"op": "CLOSE", "session": name})
