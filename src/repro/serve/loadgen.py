"""Load generation against a serve endpoint: N tenants, rate, latencies.

Each tenant gets its own connection, its own session, and its own
deterministic stream (a dataset simulator seeded per tenant), so runs are
reproducible and a served session can be re-verified offline against
``api.cluster_stream`` on the same stream. The generator drives ingestion
in batches at a target per-tenant rate (or flat out) while a *separate*
probe task on a *separate* connection issues tracked (``pid``) and ad-hoc
(``coords``) queries against a fixed intended-time schedule — the
coordinated-omission correction: a slow query inflates the reported
percentiles instead of stalling the ingest pacing loop and hiding both
numbers. The report (ingest throughput plus query-latency percentiles) is
what ``benchmarks/bench_serve.py`` records as ``BENCH_serve.json`` and
``BENCH_shard.json``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time

from repro.common.errors import ReproError
from repro.datasets.registry import DATASETS
from repro.observability.trace import percentile
from repro.serve.client import ServeClient
from repro.serve.config import SessionConfig


def tenant_stream(dataset: str, n_points: int, tenant_index: int, seed: int):
    """The deterministic stream of one tenant (seeded per tenant)."""
    return DATASETS[dataset].load(n_points, seed=seed + 1000 * tenant_index)


def probe_interval_s(rate: float, batch: int, query_every: int) -> float:
    """Seconds between QUERY probes (two probes per ``query_every`` batches).

    Matches the cadence the old inline probes had — one pid-query and one
    coords-query every ``query_every`` ingest batches — but as a wall-clock
    schedule fixed up front, independent of how ingestion actually
    progresses. Unpaced runs (``rate=0``) have no intended batch timing to
    derive a schedule from, so probes fall back to a fixed cadence.
    """
    if rate > 0:
        return (query_every * batch) / (2.0 * rate)
    return 0.01 * max(1, query_every)


async def _probe_tenant(
    host: str,
    port: int,
    name: str,
    points,
    *,
    interval: float,
    batch: int,
    stop: asyncio.Event,
    latencies: list[float],
) -> None:
    """Issue QUERY probes on their own connection against a fixed schedule.

    This is the coordinated-omission-free half of the load generator. Two
    properties matter:

    - **Own connection, own task.** The protocol answers frames strictly in
      order per connection, so a probe sharing the ingest socket queues
      behind a blocked ``INGEST`` — the probe then measures the ingest
      stall as well as masking it (the pacing loop stops sending while it
      waits). Probes here never perturb ingest pacing.
    - **Intended-time latency.** Probe ``k`` is *scheduled* at
      ``start + k * interval`` and its latency is measured from that
      intended send time, not from whenever the loop got around to sending
      it. A slow response therefore inflates the percentiles instead of
      silently delaying — and hiding — the probes behind it.
    """
    if not points:
        return
    client = await ServeClient.connect(host, port)
    try:
        start = time.perf_counter()
        k = 0
        while not stop.is_set():
            intended = start + k * interval
            delay = intended - time.perf_counter()
            if delay > 0:
                try:
                    await asyncio.wait_for(stop.wait(), timeout=delay)
                    break  # drained while idle; no probe owed
                except asyncio.TimeoutError:
                    pass
            sample = points[(k * batch) % len(points)]
            try:
                if k % 2 == 0:
                    await client.query_pid(name, sample.pid)
                else:
                    await client.query_coords(name, sample.coords)
            except (ReproError, OSError):
                break  # session failed/closed under us; stop probing
            latencies.append(time.perf_counter() - intended)
            k += 1
    finally:
        await client.close()


async def _subscribe_tenant(host: str, port: int, name: str) -> dict:
    """One push subscriber on its own connection (fan-out load).

    Subscribes from cursor 0 and counts event frames until the terminal
    end frame (the tenant's drain ends every subscription), so the count
    must equal the tenant's stride count — the report surfaces both.
    """
    client = await ServeClient.connect(host, port)
    events = 0
    reason = "error"
    cursor = None
    try:
        await client.subscribe(name, cursor=0)
        async for frame in client.pushes():
            if frame.get("push") == "event":
                events += 1
            else:  # terminal end frame
                reason = frame.get("reason")
                cursor = frame.get("cursor")
    except (ReproError, OSError):
        pass
    finally:
        await client.close()
    return {"events": events, "reason": reason, "cursor": cursor}


async def _run_tenant(
    host: str,
    port: int,
    name: str,
    config: SessionConfig,
    points,
    *,
    rate: float,
    batch: int,
    query_every: int,
    flush_tail: bool,
    subscribers: int = 0,
) -> dict:
    client = await ServeClient.connect(host, port)
    probe_task: asyncio.Task | None = None
    sub_tasks: list[asyncio.Task] = []
    stop_probes = asyncio.Event()
    query_s: list[float] = []
    try:
        await client.open_session(name, config, resume="auto")
        sub_tasks = [
            asyncio.create_task(
                _subscribe_tenant(host, port, name),
                name=f"loadgen-subscriber-{name}-{i}",
            )
            for i in range(subscribers)
        ]
        if query_every:
            probe_task = asyncio.create_task(
                _probe_tenant(
                    host,
                    port,
                    name,
                    points,
                    interval=probe_interval_s(rate, batch, query_every),
                    batch=batch,
                    stop=stop_probes,
                    latencies=query_s,
                ),
                name=f"loadgen-probes-{name}",
            )
        counts = {"accepted": 0, "shed": 0, "rejected": 0}
        start = time.perf_counter()
        next_due = start
        for offset in range(0, len(points), batch):
            chunk = points[offset : offset + batch]
            if rate > 0:
                next_due += len(chunk) / rate
                delay = next_due - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            reply = await client.ingest(name, chunk)
            for key in counts:
                counts[key] += reply.get(key, 0)
        ingest_elapsed = time.perf_counter() - start
        stop_probes.set()
        if probe_task is not None:
            await probe_task
        drain = await client.drain(name, flush_tail=flush_tail)
        stats = await client.stats(name)
        # Drain ends every subscription with a terminal frame, so the
        # subscriber tasks finish on their own.
        sub_reports = await asyncio.gather(*sub_tasks) if sub_tasks else []
        return {
            "tenant": name,
            "points_sent": len(points),
            "ingest_seconds": ingest_elapsed,
            "ingest_points_per_s": (
                counts["accepted"] / ingest_elapsed if ingest_elapsed > 0 else 0.0
            ),
            **counts,
            "queries": len(query_s),
            "query_seconds": query_s,
            "final_stride": drain["stride"],
            "ingested": drain["ingested"],
            "strides": stats["runtime"]["strides"],
            "subscriber_events": [r["events"] for r in sub_reports],
        }
    finally:
        stop_probes.set()
        if probe_task is not None and not probe_task.done():
            probe_task.cancel()
            try:
                await probe_task
            except asyncio.CancelledError:
                pass
        for task in sub_tasks:
            if not task.done():
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        await client.close()


async def run_loadgen(
    host: str,
    port: int,
    *,
    tenants: int = 4,
    points_per_tenant: int = 2000,
    dataset: str = "maze",
    config: SessionConfig,
    rate: float = 0.0,
    batch: int = 50,
    query_every: int = 1,
    flush_tail: bool = True,
    seed: int = 0,
    session_prefix: str = "tenant",
    subscribers: int = 0,
) -> dict:
    """Drive ``tenants`` concurrent sessions; return the aggregate report.

    Args:
        rate: target ingest rate per tenant in points/second (``0`` = as
            fast as the server admits — with the ``block`` policy that *is*
            the backpressure-governed maximum).
        batch: points per ``INGEST`` frame.
        query_every: probe cadence — the probe task targets two queries
            (one pid, one coords) per N batches' worth of intended ingest
            time, on its own connection (``0`` disables queries).
        flush_tail: end each session with end-of-stream semantics so its
            final snapshot matches an offline ``cluster_stream`` run.
        subscribers: push subscribers per tenant, each on its own
            connection, measuring CDC fan-out cost (requires
            ``config.journal``).
    """
    started = time.perf_counter()
    reports = await asyncio.gather(
        *(
            _run_tenant(
                host,
                port,
                f"{session_prefix}-{i}",
                config,
                tenant_stream(dataset, points_per_tenant, i, seed),
                rate=rate,
                batch=batch,
                query_every=query_every,
                flush_tail=flush_tail,
                subscribers=subscribers,
            )
            for i in range(tenants)
        )
    )
    wall = time.perf_counter() - started
    all_queries = [s for r in reports for s in r.pop("query_seconds")]
    accepted = sum(r["accepted"] for r in reports)
    aggregate = {
        "tenants": tenants,
        "dataset": dataset,
        "points_per_tenant": points_per_tenant,
        "batch": batch,
        "rate_per_tenant": rate,
        "backpressure": config.backpressure,
        "wall_seconds": wall,
        "accepted_total": accepted,
        "shed_total": sum(r["shed"] for r in reports),
        "rejected_total": sum(r["rejected"] for r in reports),
        "ingest_points_per_s": accepted / wall if wall > 0 else 0.0,
        "queries_total": len(all_queries),
        "query_p50_ms": percentile(all_queries, 50) * 1000 if all_queries else 0.0,
        "query_p95_ms": percentile(all_queries, 95) * 1000 if all_queries else 0.0,
        "subscribers_per_tenant": subscribers,
        "subscriber_events_total": sum(
            sum(r["subscriber_events"]) for r in reports
        ),
        "tenants_detail": reports,
    }
    return aggregate


def render_report(report: dict) -> str:
    """Human-readable loadgen summary (one concern per line)."""
    lines = [
        f"loadgen: {report['tenants']} tenants x "
        f"{report['points_per_tenant']} points ({report['dataset']}), "
        f"policy {report['backpressure']}",
        f"ingest: {report['accepted_total']} accepted in "
        f"{report['wall_seconds']:.2f}s "
        f"({report['ingest_points_per_s']:.0f} points/s aggregate); "
        f"shed {report['shed_total']}, rejected {report['rejected_total']}",
        f"queries: {report['queries_total']} "
        f"(p50 {report['query_p50_ms']:.2f} ms, "
        f"p95 {report['query_p95_ms']:.2f} ms)",
    ]
    if report.get("subscribers_per_tenant"):
        lines.append(
            f"subscribers: {report['subscribers_per_tenant']} per tenant, "
            f"{report['subscriber_events_total']} event frames delivered"
        )
    for tenant in report["tenants_detail"]:
        lines.append(
            f"  {tenant['tenant']}: {tenant['ingested']} ingested, "
            f"{tenant['strides']} strides, final stride "
            f"{tenant['final_stride']}, "
            f"{tenant['ingest_points_per_s']:.0f} points/s"
        )
    return "\n".join(lines)


def main(args) -> int:
    """Entry point behind ``repro loadgen``."""
    info = DATASETS[args.dataset]
    config = SessionConfig(
        eps=args.eps if args.eps is not None else info.eps,
        tau=args.tau if args.tau is not None else info.tau,
        window=args.window if args.window is not None else info.window,
        stride=args.stride
        if args.stride is not None
        else max(1, (args.window if args.window is not None else info.window) // 10),
        index=args.index,
        backpressure=args.policy,
        queue_limit=args.queue_limit,
        checkpoint_every=args.checkpoint_every,
        wal=args.wal,
        wal_fsync=args.wal_fsync,
        wal_segment_bytes=args.wal_segment_bytes,
        journal=getattr(args, "journal", False),
        journal_fsync=getattr(args, "journal_fsync", "always"),
        journal_retention=getattr(args, "journal_retention", 0),
        archive_every=getattr(args, "archive_every", 0),
    )
    subscribers = getattr(args, "subscribers", 0)
    if subscribers and not config.journal:
        print(
            "loadgen: --subscribers needs --journal (SUBSCRIBE reads the "
            "evolution journal)",
            file=sys.stderr,
        )
        return 1
    try:
        report = asyncio.run(
            run_loadgen(
                args.host,
                args.port,
                tenants=args.tenants,
                points_per_tenant=args.points,
                dataset=args.dataset,
                config=config,
                rate=args.rate,
                batch=args.batch,
                query_every=args.query_every,
                flush_tail=not args.no_flush_tail,
                seed=args.seed,
                subscribers=subscribers,
            )
        )
    except (ConnectionRefusedError, OSError) as exc:
        print(f"loadgen: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"loadgen error: {exc}", file=sys.stderr)
        return 1
    print(render_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote report to {args.json}")
    return 0
