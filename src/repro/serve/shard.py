"""Worker processes for the sharded serving layer.

DISC's striding pipeline is single-writer by construction, so one tenant can
never use more than one core — but tenants share *nothing* except the
listener socket, which makes them embarrassingly parallel. This module
supplies the process-level half of that parallelism:

- :func:`place` — deterministic consistent-hash placement of tenant names
  onto ``N`` shards (an md5 ring with virtual nodes, stable across
  processes, restarts, and Python hash randomisation);
- the **worker**: ``python -m repro.serve.shard`` runs one ordinary
  :class:`~repro.serve.service.ClusterService` behind a Unix-domain socket,
  speaking the unchanged JSON-lines protocol (the TCP dispatcher is reused
  verbatim — a worker is just today's server on a different transport);
- :class:`ShardedClusterService` — the router-process handle that spawns
  the workers, supervises them (restart with exponential backoff, a
  restart-budget circuit breaker that *decays* after a healthy interval —
  the same policy :class:`~repro.serve.service.ClusterService` applies to
  tenants), migrates legacy single-process data-dir layouts, and aggregates
  per-shard ``STATS``.

Durability is namespaced per shard: tenant state lives under
``<data-dir>/shard-<k>/<tenant>/`` where ``k = place(tenant, shards)``, so
a restarted worker can ``resume_all()`` exactly its own tenants.
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import hashlib
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro._version import __version__

#: Virtual nodes per shard on the placement ring. Enough for an even spread
#: at small shard counts without making ring construction noticeable.
VNODES = 64

#: Shard data directories under the service data-dir.
_SHARD_DIR = re.compile(r"^shard-(\d+)$")

#: How often the supervisor polls a worker process for liveness.
_POLL_S = 0.1


# ----------------------------------------------------------------- placement


def _ring(shards: int) -> tuple[list[int], list[int]]:
    """The consistent-hash ring for ``shards`` workers: (hashes, owners)."""
    entries = []
    for k in range(shards):
        for v in range(VNODES):
            digest = hashlib.md5(f"shard-{k}#{v}".encode("ascii")).digest()
            entries.append((int.from_bytes(digest[:8], "big"), k))
    entries.sort()
    return [h for h, _ in entries], [k for _, k in entries]


_RING_CACHE: dict[int, tuple[list[int], list[int]]] = {}


def place(name: str, shards: int) -> int:
    """The shard owning tenant ``name`` under an ``N``-shard deployment.

    Deterministic in (name, shards) only — the same tenant lands on the
    same shard across router restarts, which is what pins its data
    directory. Uses md5 (not :func:`hash`, which is randomised per
    process) over a ring with :data:`VNODES` virtual nodes per shard, so
    growing ``shards`` moves only ``~1/N`` of the tenants.
    """
    if shards <= 1:
        return 0
    if shards not in _RING_CACHE:
        _RING_CACHE[shards] = _ring(shards)
    hashes, owners = _RING_CACHE[shards]
    point = int.from_bytes(hashlib.md5(name.encode("utf-8")).digest()[:8], "big")
    index = bisect.bisect_right(hashes, point) % len(hashes)
    return owners[index]


def migrate_layout(data_dir: Path, shards: int) -> list[tuple[str, int]]:
    """Re-home tenant directories into ``shard-<k>/`` subdirectories.

    Handles both migrations an operator can hit: a legacy single-process
    layout (``<data-dir>/<tenant>/session.json`` at the top level, written
    by ``--shards 0``) and a re-shard (``--shards`` changed, so some
    tenants now belong to a different worker). Returns the moved
    ``(tenant, shard)`` pairs.
    """
    moved = []
    if not data_dir.is_dir():
        return moved
    for meta in sorted(data_dir.glob("*/session.json")):
        tenant = meta.parent.name
        if _SHARD_DIR.match(tenant):
            continue  # a shard dir, not a legacy tenant dir
        moved.append((tenant, place(tenant, shards)))
    for meta in sorted(data_dir.glob("shard-*/*/session.json")):
        tenant = meta.parent.name
        match = _SHARD_DIR.match(meta.parent.parent.name)
        if match is None or place(tenant, shards) == int(match.group(1)):
            continue
        moved.append((tenant, place(tenant, shards)))
    for tenant, shard in moved:
        target = data_dir / f"shard-{shard}" / tenant
        target.parent.mkdir(parents=True, exist_ok=True)
        source = next(
            p
            for p in (
                [data_dir / tenant]
                + sorted(data_dir.glob(f"shard-*/{tenant}"))
            )
            if p.is_dir() and p != target
        )
        shutil.move(str(source), str(target))
    return moved


# -------------------------------------------------------------- worker side


async def run_worker(
    service,
    socket_path: str,
    *,
    resume: bool = False,
    stop: asyncio.Event | None = None,
) -> None:
    """Serve one shard's :class:`ClusterService` on a Unix-domain socket.

    The connection handler is the exact TCP one — the JSON-lines protocol
    does not care about the transport — so everything proven for the
    single-process server (framing, error envelopes, drain semantics)
    holds per shard by construction.
    """
    from repro.serve.server import _STREAM_LIMIT, handle_connection

    if resume:
        resumed = service.resume_all()
        if resumed:
            print(
                f"shard: resumed {len(resumed)} session(s): {', '.join(resumed)}",
                flush=True,
            )
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    ppid = os.getppid()

    async def _orphan_watch() -> None:
        # A kill -9'd router cannot signal its workers. Poll for
        # reparenting so an orphaned worker drains (final checkpoint
        # included) instead of serving a socket nobody routes to.
        while not stop.is_set():
            if os.getppid() != ppid:
                print(
                    "shard: router is gone; draining", file=sys.stderr, flush=True
                )
                stop.set()
                break
            await asyncio.sleep(1.0)

    watchdog = asyncio.create_task(_orphan_watch(), name="shard-orphan-watch")
    server = await asyncio.start_unix_server(
        lambda r, w: handle_connection(service, r, w),
        path=socket_path,
        limit=_STREAM_LIMIT,
    )
    print(
        f"shard: listening on {socket_path} (pid {os.getpid()}, repro {__version__})",
        flush=True,
    )
    async with server:
        await stop.wait()
        server.close()
        await server.wait_closed()
    watchdog.cancel()
    try:
        await watchdog
    except asyncio.CancelledError:
        pass
    report = await service.shutdown()
    drained = sum(1 for r in report.values() if r.get("checkpointed"))
    print(
        f"shard: drained {len(report)} session(s), "
        f"{drained} final checkpoint(s) written",
        flush=True,
    )


def _build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve.shard",
        description="one shard worker of a sharded repro serve deployment",
    )
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--socket", required=True, help="Unix socket path to bind")
    parser.add_argument("--data-dir")
    parser.add_argument("--metrics-dir")
    parser.add_argument("--trace-dir")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--restart-budget", type=int, default=3)
    parser.add_argument("--restart-backoff", type=float, default=0.05)
    parser.add_argument("--restart-reset", type=float, default=5.0)
    return parser


def worker_main(argv: list[str] | None = None) -> int:
    """Entry point of one worker process (``python -m repro.serve.shard``)."""
    from repro.serve.service import ClusterService

    args = _build_worker_parser().parse_args(argv)
    service = ClusterService(
        data_dir=args.data_dir,
        metrics_dir=args.metrics_dir,
        trace_dir=args.trace_dir,
        restart_budget=args.restart_budget,
        restart_backoff_s=args.restart_backoff,
        restart_reset_s=args.restart_reset,
        metric_labels={"shard": str(args.shard)},
    )
    try:
        asyncio.run(run_worker(service, args.socket, resume=args.resume))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0


# -------------------------------------------------------------- router side


def _rss_bytes(pid: int) -> int:
    """Resident set size of a process, linux-style; 0 when unknowable."""
    try:
        fields = Path(f"/proc/{pid}/statm").read_text().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-linux
        return 0


class ShardWorker:
    """The router's handle on one worker process."""

    def __init__(self, index: int, socket_path: str) -> None:
        self.index = index
        self.socket_path = socket_path
        self.proc: subprocess.Popen | None = None
        self.restarts = 0  # cumulative supervised restarts (STATS)
        self.budget_used = 0  # restarts in the current unhealthy window
        self.degraded: str | None = None  # "restarting" / "circuit-open"
        self.healthy_since = 0.0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> int | None:
        return None if self.proc is None else self.proc.pid


class ShardedClusterService:
    """Places tenants onto worker processes and keeps those processes alive.

    The router-side core of ``repro serve --shards N``: it owns the worker
    :class:`subprocess.Popen` handles and their per-shard Unix sockets, but
    no tenant state whatsoever — every session lives inside exactly one
    worker's ordinary :class:`~repro.serve.service.ClusterService`. Worker
    supervision mirrors tenant supervision one level up: a dead worker is
    respawned with ``--resume`` (its tenants come back from checkpoint +
    WAL) under exponential backoff, a restart budget opens the circuit on a
    crash-looping shard, and a shard that stays healthy for
    ``restart_reset_s`` earns its budget back.

    Args:
        shards: worker process count (>= 1; ``0`` is the caller's cue to
            use the in-process :class:`ClusterService` instead).
        data_dir: root durability directory; workers get
            ``<data_dir>/shard-<k>``. ``None`` serves ephemeral tenants.
        metrics_dir / trace_dir: per-tenant observability sinks, shared by
            all workers (tenant names are globally unique; Prometheus
            series carry a ``shard`` label).
        restart_budget / restart_backoff_s / restart_reset_s: worker *and*
            tenant supervision knobs (forwarded to each worker).
        socket_dir: where the per-shard Unix sockets live; a short
            ``/tmp`` directory is created (and cleaned up) by default —
            Unix socket paths have a ~100-byte limit, so test tmp dirs are
            a poor home for them.
    """

    def __init__(
        self,
        shards: int,
        *,
        data_dir: str | os.PathLike | None = None,
        metrics_dir: str | os.PathLike | None = None,
        trace_dir: str | os.PathLike | None = None,
        restart_budget: int = 3,
        restart_backoff_s: float = 0.05,
        restart_reset_s: float = 5.0,
        socket_dir: str | os.PathLike | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"a sharded service needs shards >= 1, got {shards}")
        self.shards = shards
        self.data_dir = None if data_dir is None else Path(data_dir)
        self.metrics_dir = None if metrics_dir is None else Path(metrics_dir)
        self.trace_dir = None if trace_dir is None else Path(trace_dir)
        self.restart_budget = restart_budget
        self.restart_backoff_s = restart_backoff_s
        self.restart_reset_s = restart_reset_s
        self.accepting = True
        self.port: int | None = None  # set by run_router once bound
        self._owns_socket_dir = socket_dir is None
        self.socket_dir = Path(
            tempfile.mkdtemp(prefix="repro-shards-")
            if socket_dir is None
            else socket_dir
        )
        self.workers = [
            ShardWorker(k, str(self.socket_dir / f"shard-{k}.sock"))
            for k in range(shards)
        ]
        self._watchers: list[asyncio.Task] = []

    # ------------------------------------------------------------- placement

    def shard_for(self, name: str) -> ShardWorker:
        return self.workers[place(name, self.shards)]

    # ------------------------------------------------------------- lifecycle

    async def start(self, *, resume: bool = False) -> None:
        """Migrate the data-dir layout, spawn every worker, await readiness."""
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            moved = migrate_layout(self.data_dir, self.shards)
            if moved:
                print(
                    f"serve: migrated {len(moved)} tenant dir(s) into the "
                    f"sharded layout: "
                    + ", ".join(f"{t}→shard-{k}" for t, k in moved),
                    flush=True,
                )
        for worker in self.workers:
            self._spawn(worker, resume=resume)
        await asyncio.gather(*(self._wait_ready(w) for w in self.workers))
        loop = asyncio.get_running_loop()
        self._watchers = [
            loop.create_task(self._watch(w), name=f"shard-supervisor-{w.index}")
            for w in self.workers
        ]

    def _spawn(self, worker: ShardWorker, *, resume: bool) -> None:
        try:
            os.unlink(worker.socket_path)
        except OSError:
            pass
        argv = [
            sys.executable,
            "-m",
            "repro.serve.shard",
            "--shard",
            str(worker.index),
            "--socket",
            worker.socket_path,
            "--restart-budget",
            str(self.restart_budget),
            "--restart-backoff",
            str(self.restart_backoff_s),
            "--restart-reset",
            str(self.restart_reset_s),
        ]
        if self.data_dir is not None:
            argv += ["--data-dir", str(self.data_dir / f"shard-{worker.index}")]
        if self.metrics_dir is not None:
            argv += ["--metrics-dir", str(self.metrics_dir)]
        if self.trace_dir is not None:
            argv += ["--trace-dir", str(self.trace_dir)]
        if resume:
            argv.append("--resume")
        env = dict(os.environ)
        # The worker must import the same repro the router runs — prepend
        # its package root so uninstalled source checkouts work too.
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (package_root, env.get("PYTHONPATH"))
            if p
        )
        worker.proc = subprocess.Popen(argv, env=env)
        worker.healthy_since = time.monotonic()

    async def _wait_ready(self, worker: ShardWorker, timeout: float = 30.0) -> None:
        """Block until the worker's socket accepts connections."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not worker.alive:
                raise RuntimeError(
                    f"shard-{worker.index} worker died during startup "
                    f"(exit {worker.proc.returncode})"
                )
            try:
                reader, writer = await asyncio.open_unix_connection(
                    worker.socket_path
                )
            except OSError:
                await asyncio.sleep(0.05)
                continue
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - close races
                pass
            return
        raise RuntimeError(f"shard-{worker.index} worker never became ready")

    async def connect(
        self, worker: ShardWorker
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """One fresh upstream connection to a worker (router/tests)."""
        from repro.serve.server import _STREAM_LIMIT

        return await asyncio.open_unix_connection(
            worker.socket_path, limit=_STREAM_LIMIT
        )

    async def stop(self) -> None:
        """Graceful shutdown: SIGTERM every worker, await their drains."""
        self.accepting = False
        for task in self._watchers:
            task.cancel()
        self._watchers = []
        for worker in self.workers:
            if worker.alive:
                worker.proc.send_signal(signal.SIGTERM)
        for worker in self.workers:
            if worker.proc is None:
                continue
            try:
                await asyncio.to_thread(worker.proc.wait, 30)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck drain
                worker.proc.kill()
                await asyncio.to_thread(worker.proc.wait)
        if self._owns_socket_dir:
            shutil.rmtree(self.socket_dir, ignore_errors=True)

    # ----------------------------------------------------------- supervision

    async def _watch(self, worker: ShardWorker) -> None:
        """Keep one worker alive: restart with backoff, budget, decay.

        The same circuit-breaker policy the in-worker ``ClusterService``
        applies to tenant writers, applied to the worker processes: crash
        → backoff → respawn with ``--resume`` (tenants return from
        checkpoint + WAL), a budget of restarts per unhealthy window, and
        the window closes again after ``restart_reset_s`` of health.
        """
        while self.accepting:
            if worker.alive:
                if (
                    worker.budget_used
                    and time.monotonic() - worker.healthy_since
                    > self.restart_reset_s
                ):
                    worker.budget_used = 0
                await asyncio.sleep(_POLL_S)
                continue
            if not self.accepting:  # pragma: no cover - stop() race
                return
            attempt = worker.budget_used
            if attempt >= self.restart_budget:
                worker.degraded = "circuit-open"
                print(
                    f"serve: shard-{worker.index} crashed with its restart "
                    f"budget exhausted ({self.restart_budget}); circuit open",
                    file=sys.stderr,
                    flush=True,
                )
                return
            worker.degraded = "restarting"
            print(
                f"serve: shard-{worker.index} worker died "
                f"(exit {worker.proc.returncode if worker.proc else '?'}); "
                f"restart {attempt + 1}/{self.restart_budget} in "
                f"{self.restart_backoff_s * 2**attempt:.3f}s",
                file=sys.stderr,
                flush=True,
            )
            await asyncio.sleep(self.restart_backoff_s * 2**attempt)
            if not self.accepting:
                return
            worker.budget_used += 1
            worker.restarts += 1
            self._spawn(worker, resume=True)
            try:
                await self._wait_ready(worker)
            except RuntimeError:
                continue  # died again during startup; loop charges the budget
            worker.degraded = None
            worker.healthy_since = time.monotonic()

    # ----------------------------------------------------------------- stats

    async def _worker_stats(self, worker: ShardWorker) -> dict | None:
        """One worker's session-less STATS, or None when unreachable."""
        from repro.serve import protocol

        if not worker.alive:
            return None
        try:
            reader, writer = await self.connect(worker)
        except OSError:
            return None
        try:
            writer.write(protocol.encode_frame({"op": "STATS"}))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=10)
            if not line:
                return None
            reply = protocol.decode_frame(line)
            return reply if reply.get("ok") else None
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - close races
                pass

    async def stats(self) -> dict:
        """The aggregated session-less ``STATS`` payload.

        A strict superset of the single-process shape: the familiar
        server-wide totals, plus ``shards`` and a per-worker
        ``shard_detail`` list (pid, rss, tenant names, restart counters,
        degraded state) — the router's own supervision view included.
        """
        per_shard = await asyncio.gather(
            *(self._worker_stats(w) for w in self.workers)
        )
        sessions: list[str] = []
        degraded: dict[str, str] = {}
        totals = {"received": 0, "ingested": 0, "queries": 0, "tenant_restarts": 0}
        detail = []
        for worker, stats in zip(self.workers, per_shard):
            entry = {
                "shard": worker.index,
                "pid": worker.pid,
                "alive": worker.alive,
                "rss_bytes": _rss_bytes(worker.pid) if worker.alive else 0,
                "restarts": worker.restarts,
                "degraded": worker.degraded,
                "tenants": [],
            }
            if worker.degraded is not None:
                degraded[f"shard-{worker.index}"] = worker.degraded
            if stats is not None:
                entry["tenants"] = stats.get("sessions", [])
                sessions.extend(entry["tenants"])
                for name, state in stats.get("degraded", {}).items():
                    degraded[name] = state
                for key in totals:
                    totals[key] += stats.get(key, 0)
            detail.append(entry)
        return {
            "version": __version__,
            "accepting": self.accepting,
            "shards": self.shards,
            "router_pid": os.getpid(),
            "worker_restarts": sum(w.restarts for w in self.workers),
            "sessions": sorted(sessions),
            "degraded": dict(sorted(degraded.items())),
            **totals,
            "shard_detail": detail,
        }


if __name__ == "__main__":
    sys.exit(worker_main())
