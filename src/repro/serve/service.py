"""The tenant registry: open / resume / query / drain / close sessions.

A :class:`ClusterService` is the server's in-process core (the TCP layer in
:mod:`repro.serve.server` is a thin frame dispatcher over it, and tests
drive it directly). It owns the tenant map and the durability layout: under
``data_dir`` each tenant gets ::

    <data_dir>/<tenant>/session.json    # SessionConfig, written atomically
    <data_dir>/<tenant>/ckpt/           # the Supervisor's CheckpointStore
    <data_dir>/<tenant>/wal/            # write-ahead log segments (opt-in)
    <data_dir>/<tenant>/evj/            # evolution journal (CDC) segments
    <data_dir>/<tenant>/archive/        # sparse AS_OF snapshots (opt-in)

so :meth:`ClusterService.resume_all` can resurrect every tenant of a killed
server — config from the metadata file, clustering state from the newest
checkpoint, the acknowledged tail from the WAL — without clients re-sending
their ``OPEN`` frames.

The service also *supervises* its sessions: every tenant gets a watcher
task that waits on the session's ``crashed`` event (set when the writer
task dies on anything other than a policy-governed fault). A crashed tenant
is isolated — its connections get error envelopes, co-resident tenants are
untouched — marked degraded in ``STATS``, and restarted in place from
checkpoint + WAL with exponential backoff. A restart-budget circuit breaker
stops the loop when a tenant keeps dying: past the budget it stays failed
until an operator intervenes.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import re
from pathlib import Path

from repro._version import __version__
from repro.query.archive import SnapshotArchive
from repro.query.journal import EvolutionJournal
from repro.runtime.wal import WriteAheadLog
from repro.serve.config import SessionConfig
from repro.serve.protocol import ServeError
from repro.serve.session import TenantSession

logger = logging.getLogger("repro.serve")

#: Tenant names are path components; keep them boring.
_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ClusterService:
    """Hosts many independent tenant sessions.

    Args:
        data_dir: root directory for per-tenant durability (checkpoints +
            session metadata). ``None`` serves ephemeral tenants only.
        metrics_dir: when set, each tenant maintains a Prometheus textfile
            ``<metrics_dir>/<tenant>.prom`` (atomic rewrites).
        trace_dir: when set, each tenant appends one JSON trace record per
            stride to ``<trace_dir>/<tenant>.jsonl``.
        journal: when True, every session records its post-admission item
            sequence in ``session.journal`` (test instrumentation).
        restart_budget: supervised restarts allowed per tenant *per
            unhealthy window* before the circuit breaker opens and the
            tenant stays failed.
        restart_backoff_s: base of the exponential restart backoff
            (``backoff * 2**attempt`` seconds before each restart).
        restart_reset_s: how long a restarted tenant must stay healthy for
            its budget window to close (the restart count resets to 0). A
            tenant that crashes once a day forever keeps healing; only a
            crash *loop* opens the circuit.
        metric_labels: extra Prometheus labels stamped on every series of
            the per-tenant textfiles (the sharded deployment passes
            ``{"shard": k}``).
    """

    def __init__(
        self,
        *,
        data_dir: str | os.PathLike | None = None,
        metrics_dir: str | os.PathLike | None = None,
        trace_dir: str | os.PathLike | None = None,
        journal: bool = False,
        restart_budget: int = 3,
        restart_backoff_s: float = 0.05,
        restart_reset_s: float = 5.0,
        metric_labels: dict | None = None,
    ) -> None:
        self.data_dir = None if data_dir is None else Path(data_dir)
        self.metrics_dir = None if metrics_dir is None else Path(metrics_dir)
        self.trace_dir = None if trace_dir is None else Path(trace_dir)
        self.journal = journal
        self.restart_budget = restart_budget
        self.restart_backoff_s = restart_backoff_s
        self.restart_reset_s = restart_reset_s
        self.metric_labels = dict(metric_labels or {})
        self.sessions: dict[str, TenantSession] = {}
        self.degraded: dict[str, str] = {}  # tenant -> "restarting"/"circuit-open"
        self.accepting = True
        self.port: int | None = None  # set by run_server once bound
        self._watchers: dict[str, asyncio.Task] = {}
        self._restart_counts: dict[str, int] = {}  # current unhealthy window
        self._restart_totals: dict[str, int] = {}  # lifetime (STATS)
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- lifecycle

    def open(
        self,
        name: str,
        config: SessionConfig,
        *,
        resume: bool | str = "auto",
    ) -> TenantSession:
        """Create (or restore) a tenant session and start its writer task.

        Must run inside the event loop. ``resume="auto"`` picks up a
        checkpoint when one exists, so re-``OPEN``-ing a durable tenant
        after a crash continues it instead of starting over.
        """
        if not self.accepting:
            raise ServeError("draining", "server is draining; no new sessions")
        if not _NAME.match(name):
            raise ServeError(
                "bad-request",
                f"invalid session name {name!r} (want {_NAME.pattern})",
            )
        if name in self.sessions:
            # Idempotent re-OPEN: after a crash the server's --resume path
            # may have resurrected the tenant before the client reconnects;
            # the client's OPEN then just reattaches (and learns the replay
            # offset). A *conflicting* config is still an error.
            existing = self.sessions[name]
            if existing.config == config:
                return existing
            raise ServeError(
                "session-exists",
                f"session {name!r} is already being served with a different config",
            )
        store = None
        wal = None
        evjournal = None
        archive = None
        if self.data_dir is not None:
            tenant_dir = self.data_dir / name
            tenant_dir.mkdir(parents=True, exist_ok=True)
            self._write_meta(tenant_dir / "session.json", config)
            store = str(tenant_dir / "ckpt")
            if config.wal:
                wal = self._make_wal(tenant_dir, config)
            if config.journal:
                evjournal, archive = self._make_query_side(tenant_dir, config)
        elif config.wal:
            raise ServeError(
                "bad-request",
                "the write-ahead log needs a durable tenant: "
                "start the server with --data-dir",
            )
        elif config.journal:
            raise ServeError(
                "bad-request",
                "the evolution journal needs a durable tenant: "
                "start the server with --data-dir",
            )
        session = TenantSession(
            name,
            config,
            store=store,
            tracer=self._make_tracer(name),
            journal=[] if self.journal else None,
            wal=wal,
            evjournal=evjournal,
            archive=archive,
        )
        session.start(resume=resume if store is not None else False)
        self.sessions[name] = session
        self._supervise(name)
        return session

    def resume_all(self) -> list[str]:
        """Resurrect every tenant persisted under ``data_dir``.

        Returns the resumed tenant names, sorted. Tenants without a
        checkpoint yet (killed before the first one) restart fresh from
        their persisted config — either way the client replays the stream
        from the beginning and the session swallows the covered prefix.
        """
        if self.data_dir is None:
            return []
        resumed = []
        for meta_path in sorted(self.data_dir.glob("*/session.json")):
            name = meta_path.parent.name
            if name in self.sessions:
                continue
            config = self._read_meta(meta_path)
            self.open(name, config, resume="auto")
            resumed.append(name)
        return resumed

    def get(self, name: str) -> TenantSession:
        try:
            return self.sessions[name]
        except KeyError:
            raise ServeError(
                "no-such-session", f"no session named {name!r}"
            ) from None

    async def drain(self, name: str, *, flush_tail: bool = False) -> dict:
        """Drain one tenant: stop admitting, flush, final checkpoint."""
        return await self.get(name).drain(flush_tail=flush_tail)

    async def close(self, name: str) -> None:
        """Stop one tenant's writer and forget it (checkpoints remain)."""
        session = self.get(name)
        self._unwatch(name)
        await session.close()
        if session.wal is not None:
            session.wal.close()
        if session.evjournal is not None:
            session.evjournal.close()
        if session.tracer is not None:
            session.tracer.close()
        self.degraded.pop(name, None)
        del self.sessions[name]

    async def shutdown(self, *, flush_tail: bool = False) -> dict:
        """Graceful drain of the whole server.

        Stops admitting new sessions, drains every tenant (queues flushed,
        final checkpoints written), then stops the writer tasks. Returns a
        per-tenant drain report.
        """
        self.accepting = False
        for name in list(self._watchers):
            self._unwatch(name)
        report = {}
        for name in sorted(self.sessions):
            report[name] = await self.sessions[name].drain(flush_tail=flush_tail)
        for name in list(self.sessions):
            await self.close(name)
        return report

    def stats(self) -> dict:
        """Server-level stats for a session-less ``STATS`` frame."""
        return {
            "version": __version__,
            "accepting": self.accepting,
            "sessions": sorted(self.sessions),
            "degraded": {name: state for name, state in sorted(self.degraded.items())},
            "tenant_restarts": sum(self._restart_totals.values()),
            "received": sum(s.received for s in self.sessions.values()),
            "ingested": sum(s.ingested for s in self.sessions.values()),
            "queries": sum(s.queries for s in self.sessions.values()),
        }

    # ------------------------------------------------------------ supervision

    def _supervise(self, name: str) -> None:
        """Attach the self-healing watcher for one tenant."""
        self._unwatch(name)
        self._watchers[name] = asyncio.get_running_loop().create_task(
            self._watch(name), name=f"serve-supervisor-{name}"
        )

    def _unwatch(self, name: str) -> None:
        task = self._watchers.pop(name, None)
        if task is not None and not task.done():
            task.cancel()

    async def _watch(self, name: str) -> None:
        """Restart a crashed tenant from checkpoint + WAL, with backoff.

        One watcher per tenant: it waits for the session's ``crashed``
        event, backs off exponentially, rebuilds the session *in place*
        (same config, same store, same WAL, same tracer) and keeps
        watching the replacement. The restart budget is a circuit breaker:
        a tenant that keeps dying stays failed — its connections keep
        getting error envelopes — rather than burning CPU in a crash loop.
        Co-resident tenants never notice any of this.

        The budget covers one *unhealthy window*, not the tenant's
        lifetime: a replacement that stays healthy for ``restart_reset_s``
        resets the count, so isolated crashes days apart never accumulate
        into a spurious circuit-open (they still show up in the cumulative
        ``tenant_restarts`` stat).
        """
        while True:
            session = self.sessions.get(name)
            if session is None:
                return
            if self._restart_counts.get(name, 0) and not session.crashed.is_set():
                # A budget window is open: give the replacement
                # restart_reset_s to prove itself before charging the next
                # crash against the same window.
                try:
                    await asyncio.wait_for(
                        session.crashed.wait(), timeout=self.restart_reset_s
                    )
                except asyncio.TimeoutError:
                    if (
                        self.sessions.get(name) is session
                        and session.failed is None
                    ):
                        self._restart_counts[name] = 0
                    continue
            else:
                await session.crashed.wait()
            if self.sessions.get(name) is not session:
                continue  # replaced under us (re-OPEN race); watch the new one
            attempt = self._restart_counts.get(name, 0)
            if attempt >= self.restart_budget:
                self.degraded[name] = "circuit-open"
                logger.error(
                    "tenant %s: crashed again with restart budget exhausted "
                    "(%d); circuit open — session stays failed (%s)",
                    name,
                    self.restart_budget,
                    session.failed,
                )
                return
            self.degraded[name] = "restarting"
            logger.warning(
                "tenant %s: writer crashed (%s); restart %d/%d in %.3fs",
                name,
                session.failed,
                attempt + 1,
                self.restart_budget,
                self.restart_backoff_s * 2**attempt,
            )
            await asyncio.sleep(self.restart_backoff_s * 2**attempt)
            if self.sessions.get(name) is not session or not self.accepting:
                self.degraded.pop(name, None)
                return
            self._restart_counts[name] = attempt + 1
            self._restart_totals[name] = self._restart_totals.get(name, 0) + 1
            replacement = self._rebuild(name, session)
            self.sessions[name] = replacement
            self.degraded.pop(name, None)

    def _rebuild(self, name: str, crashed: TenantSession) -> TenantSession:
        """Build the replacement session for a crashed tenant.

        Reuses the crashed session's store path, WAL (same object — the
        process never died, so its segments and stats carry over), and
        tracer. The replacement resumes from the newest checkpoint and
        replays the WAL tail past it, recovering every acknowledged item —
        including ones that were still queued when the writer died. It
        starts with ``swallow_prefix=False``: connected producers never saw
        a crash and keep sending only *new* points.
        """
        store = (
            str(self.data_dir / name / "ckpt") if self.data_dir is not None else None
        )
        if crashed.wal is not None:
            crashed.wal.stats.tenant_restarts += 1
        replacement = TenantSession(
            name,
            crashed.config,
            store=store,
            tracer=crashed.tracer,
            journal=[] if self.journal else None,
            wal=crashed.wal,
            evjournal=crashed.evjournal,
            archive=crashed.archive,
        )
        # Live subscriptions survive the in-place restart: the pump tasks
        # hold subscriber queues, not the session object, and WAL-tail
        # replay republishes idempotently — no duplicates, no gaps.
        replacement._subscribers = crashed._subscribers
        replacement.restarts = self._restart_totals.get(name, 0)
        replacement.start(
            resume="auto" if store is not None else False, swallow_prefix=False
        )
        return replacement

    def _make_wal(self, tenant_dir: Path, config: SessionConfig) -> WriteAheadLog:
        return WriteAheadLog(
            tenant_dir / "wal",
            fsync=config.wal_fsync,
            fsync_every=config.wal_fsync_every,
            fsync_interval_s=config.wal_fsync_interval_s,
            segment_bytes=config.wal_segment_bytes,
        )

    def _make_query_side(
        self, tenant_dir: Path, config: SessionConfig
    ) -> tuple[EvolutionJournal, SnapshotArchive]:
        """The tenant's CDC journal + AS_OF archive (journal fsync knobs
        mirror the WAL's ``every_n``/``interval`` parameters)."""
        evjournal = EvolutionJournal(
            tenant_dir / "evj",
            fsync=config.journal_fsync,
            fsync_every=config.wal_fsync_every,
            fsync_interval_s=config.wal_fsync_interval_s,
            segment_bytes=config.journal_segment_bytes,
        )
        archive = SnapshotArchive(
            tenant_dir / "archive",
            every=config.archive_every,
            journal=evjournal,
        )
        return evjournal, archive

    # -------------------------------------------------------------- internals

    def _make_tracer(self, name: str):
        if self.metrics_dir is None and self.trace_dir is None:
            return None
        from repro.observability import (
            JsonlTraceWriter,
            PrometheusTextfileExporter,
            Tracer,
        )

        sinks = []
        if self.trace_dir is not None:
            sinks.append(JsonlTraceWriter(self.trace_dir / f"{name}.jsonl"))
        if self.metrics_dir is not None:
            sinks.append(
                PrometheusTextfileExporter(
                    self.metrics_dir / f"{name}.prom",
                    labels=self.metric_labels or None,
                )
            )
        return Tracer(*sinks)

    @staticmethod
    def _write_meta(path: Path, config: SessionConfig) -> None:
        payload = {"version": __version__, "config": config.as_dict()}
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        os.replace(tmp, path)

    @staticmethod
    def _read_meta(path: Path) -> SessionConfig:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return SessionConfig.from_dict(payload["config"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ServeError(
                "internal", f"unreadable session metadata {path}: {exc}"
            ) from exc
