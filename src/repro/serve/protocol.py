"""The stdlib-only JSON-lines TCP protocol of the serving layer.

One request frame per line, one response frame per line, in order. A frame
is a JSON object with an ``op`` (``OPEN`` / ``INGEST`` / ``QUERY`` /
``SNAPSHOT`` / ``EVENTS`` / ``SUBSCRIBE`` / ``STATS`` / ``DRAIN`` /
``CLOSE``), an optional client correlation ``id`` (echoed verbatim), and
op-specific fields. Responses are either a success envelope::

    {"ok": true, "op": "INGEST", "id": 7, ...op-specific fields...}

or an error envelope that never kills the connection::

    {"ok": false, "id": 7, "error": {"code": "no-such-session",
                                     "message": "..."}}

Points travel as ``[pid, [coord, ...], time]`` triples. A row that cannot
be parsed is *not* a protocol error: it is forwarded to the session as a
:class:`~repro.datasets.io.MalformedRecord` so the tenant's configured
input-fault policy (strict/skip/clamp) decides its fate — the wire format
stays policy-agnostic, exactly like the file readers.

``SUBSCRIBE`` adds the one exception to strict request/response ordering:
after its success envelope, the server interleaves *push frames* on the
same connection. A push frame is distinguished by a ``push`` key instead
of ``ok`` — ``{"push": "event", "session": ..., "record": {...}}`` for
each journaled stride, and a terminal
``{"push": "end", "session": ..., "reason": ..., "cursor": ...}`` when
the subscription stops (drain, close, slow-consumer disconnect, or
shard failover). Clients that subscribe on a connection they also issue
requests on must demultiplex by that key.

The protocol is deployment-agnostic: a sharded server (``--shards N``)
speaks exactly the same frames. The only visible differences are additive —
a session-less ``STATS`` response gains ``shards``, ``router_pid``,
``worker_restarts`` and a ``shard_detail`` list (per-shard pid, rss_bytes,
alive, restarts, degraded state, tenant names), and frames addressed to a
tenant whose worker is down carry the ``shard-unavailable`` error code.

See ``docs/serving.md`` for the full frame catalogue.
"""

from __future__ import annotations

import json
import math

from repro.common.errors import ReproError
from repro.common.limits import MAX_FRAME_BYTES  # noqa: F401  (re-export)
from repro.common.points import StreamPoint
from repro.datasets.io import MalformedRecord

#: Ops a client may send.
OPS = (
    "OPEN",
    "INGEST",
    "QUERY",
    "SNAPSHOT",
    "EVENTS",
    "SUBSCRIBE",
    "STATS",
    "DRAIN",
    "CLOSE",
)

#: Error codes carried by error envelopes.
ERROR_CODES = (
    "bad-frame",  # not JSON, not an object, or over the line limit
    "unknown-op",  # op missing or not in OPS
    "bad-request",  # op-specific fields missing or malformed
    "session-exists",  # OPEN of a name already being served
    "no-such-session",  # any op addressed to an unknown session
    "draining",  # INGEST after DRAIN
    "session-failed",  # the writer task died (e.g. strict-policy fault)
    "wal-error",  # the write-ahead log could not make a batch durable
    "shard-unavailable",  # the owning worker is down/restarting/circuit-open
    "internal",  # unexpected server-side failure
)

#: Slow-consumer policies for ``SUBSCRIBE`` (mirrors ingest backpressure):
#: ``block`` stalls the stride pipeline until the subscriber catches up,
#: ``disconnect`` ends the subscription with a terminal push frame.
SUBSCRIBE_POLICIES = ("block", "disconnect")


class ProtocolError(ReproError):
    """A frame that could not be decoded or validated.

    Attributes:
        code: one of :data:`ERROR_CODES`.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServeError(ReproError):
    """A service-level failure, carrying a protocol error code.

    Raised by :class:`~repro.serve.service.ClusterService` and
    :class:`~repro.serve.session.TenantSession`; the dispatcher turns it
    into an error envelope without dropping the connection.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


# ------------------------------------------------------------------- frames


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame to its wire form (compact JSON + newline)."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one wire line into a frame dict.

    Raises:
        ProtocolError: when the line is over the size limit, is not valid
            JSON, or is not a JSON object.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "bad-frame", f"frame exceeds {MAX_FRAME_BYTES} bytes"
        )
    try:
        frame = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-frame", f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("bad-frame", "frame must be a JSON object")
    return frame


def ok_response(op: str, request_id=None, **fields) -> dict:
    """Build a success envelope for ``op``, echoing the correlation id."""
    response = {"ok": True, "op": op}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response


def error_response(code: str, message: str, request_id=None) -> dict:
    """Build an error envelope (connection stays usable)."""
    response = {"ok": False, "error": {"code": code, "message": message}}
    if request_id is not None:
        response["id"] = request_id
    return response


# ------------------------------------------------------------------- points


def encode_point(point: StreamPoint) -> list:
    """One point in wire form: ``[pid, [coords...], time]``."""
    return [point.pid, list(point.coords), point.time]


def encode_points(points) -> list[list]:
    # Already-encoded wire rows pass through untouched, so callers may mix
    # StreamPoints with raw rows (tests exercise malformed rows this way).
    return [p if isinstance(p, list) else encode_point(p) for p in points]


def decode_point(row, seq: int) -> StreamPoint | MalformedRecord:
    """Decode one wire row into a stream point.

    A malformed row becomes a :class:`MalformedRecord` (with ``seq`` as its
    line number) instead of an exception, so the session's input-fault
    policy — not the transport — decides whether to raise, skip or clamp.
    Non-finite coordinates are *not* rejected here for the same reason: the
    guard's clamp policy must get the chance to repair them.
    """
    try:
        pid, coords, *rest = row
        time = float(rest[0]) if rest else 0.0
        point = StreamPoint(
            int(pid), tuple(float(c) for c in coords), time
        )
    except (TypeError, ValueError) as exc:
        return MalformedRecord(seq, repr(row), str(exc))
    if not point.coords or not math.isfinite(point.time):
        return MalformedRecord(seq, repr(row), "empty coords or bad timestamp")
    return point


def decode_points(rows, start_seq: int = 0) -> list[StreamPoint | MalformedRecord]:
    """Decode an ``INGEST`` frame's point rows, preserving order."""
    if not isinstance(rows, list):
        raise ProtocolError("bad-request", "INGEST points must be a list")
    return [decode_point(row, start_seq + i) for i, row in enumerate(rows)]
