"""The asyncio TCP server: frames in, envelopes out, graceful drain.

The server is deliberately thin: each connection reads JSON-lines frames
and hands them to :func:`dispatch`, which translates ops into
:class:`~repro.serve.service.ClusterService` calls and failures into error
envelopes (a bad frame never kills a healthy connection; only an oversized
one does, because the stream cannot be resynchronised). All sessions are
shared across connections — any client may query a tenant another client
feeds.

``SIGTERM``/``SIGINT`` trigger the graceful path: stop accepting, drain
every tenant (flush queues, final checkpoints), close. ``kill -9`` skips
all of that by design — the recovery drill in CI proves the checkpoint
layer brings every tenant back exactly.
"""

from __future__ import annotations

import asyncio
import signal
import sys

from repro._version import __version__
from repro.common.errors import ReproError
from repro.serve import protocol
from repro.serve.config import SessionConfig
from repro.serve.protocol import ProtocolError, ServeError
from repro.serve.service import ClusterService

#: readline() needs headroom over the frame limit for the newline itself.
_STREAM_LIMIT = protocol.MAX_FRAME_BYTES + 1024


async def dispatch(service: ClusterService, frame: dict) -> dict:
    """Execute one request frame against the service; never raises."""
    rid = frame.get("id")
    op = frame.get("op")
    if op not in protocol.OPS:
        return protocol.error_response(
            "unknown-op", f"unknown op {op!r}; expected one of {protocol.OPS}", rid
        )
    try:
        return await _dispatch_op(service, op, frame, rid)
    except (ProtocolError, ServeError) as exc:
        return protocol.error_response(exc.code, str(exc), rid)
    except ReproError as exc:
        return protocol.error_response("bad-request", str(exc), rid)
    except Exception as exc:  # pragma: no cover - defensive envelope
        return protocol.error_response(
            "internal", f"{type(exc).__name__}: {exc}", rid
        )


def _session_name(frame: dict) -> str:
    name = frame.get("session")
    if not isinstance(name, str) or not name:
        raise ProtocolError(
            "bad-request", f"frame needs a string 'session' field, got {name!r}"
        )
    return name


async def _dispatch_op(
    service: ClusterService, op: str, frame: dict, rid
) -> dict:
    if op == "OPEN":
        name = _session_name(frame)
        config_payload = frame.get("config")
        if not isinstance(config_payload, dict):
            raise ProtocolError("bad-request", "OPEN needs a 'config' object")
        resume = frame.get("resume", "auto")
        if resume not in (True, False, "auto"):
            raise ProtocolError(
                "bad-request", f"resume must be true/false/'auto', got {resume!r}"
            )
        session = service.open(name, SessionConfig.from_dict(config_payload), resume=resume)
        return protocol.ok_response(
            op,
            rid,
            session=name,
            stride=session.view.stride,
            replay_offset=session.replay_offset,
            version=__version__,
        )

    if op == "INGEST":
        session = service.get(_session_name(frame))
        session.require_healthy()
        if session.draining:
            raise ServeError(
                "draining", f"session {session.name!r} is draining"
            )
        items = protocol.decode_points(
            frame.get("points"), start_seq=session.received
        )
        result = await session.offer(items)
        # Give the writer one scheduling slot so a failure caused by this
        # very batch (strict policy) surfaces in this response rather than
        # the next one.
        await asyncio.sleep(0)
        session.require_healthy()
        return protocol.ok_response(op, rid, session=session.name, **result)

    if op == "QUERY":
        session = service.get(_session_name(frame))
        session.queries += 1
        view = session.view
        if "pid" in frame:
            try:
                pid = int(frame["pid"])
            except (TypeError, ValueError) as exc:
                raise ProtocolError("bad-request", f"bad pid: {exc}") from exc
            return protocol.ok_response(op, rid, **view.membership(pid))
        if "coords" in frame:
            coords = frame["coords"]
            try:
                coords = tuple(float(c) for c in coords)
            except (TypeError, ValueError) as exc:
                raise ProtocolError("bad-request", f"bad coords: {exc}") from exc
            if not coords:
                raise ProtocolError("bad-request", "coords must be non-empty")
            return protocol.ok_response(op, rid, **view.classify(coords))
        raise ProtocolError("bad-request", "QUERY needs 'pid' or 'coords'")

    if op == "SNAPSHOT":
        session = service.get(_session_name(frame))
        session.queries += 1
        return protocol.ok_response(op, rid, **session.view.snapshot_payload())

    if op == "STATS":
        if frame.get("session") is None:
            return protocol.ok_response(op, rid, **service.stats())
        session = service.get(_session_name(frame))
        return protocol.ok_response(
            op, rid, version=__version__, **session.stats()
        )

    if op == "DRAIN":
        result = await service.drain(
            _session_name(frame), flush_tail=bool(frame.get("flush_tail", False))
        )
        return protocol.ok_response(op, rid, **result)

    # CLOSE
    name = _session_name(frame)
    await service.close(name)
    return protocol.ok_response(op, rid, session=name)


async def handle_connection(
    service: ClusterService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection: request/response, in order."""
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The stream cannot be resynchronised past an oversized
                # frame; report and hang up.
                writer.write(
                    protocol.encode_frame(
                        protocol.error_response(
                            "bad-frame", "frame exceeds the line limit"
                        )
                    )
                )
                await writer.drain()
                break
            if not line:
                break  # client hung up
            if line.strip() == b"":
                continue
            try:
                frame = protocol.decode_frame(line)
            except ProtocolError as exc:
                response = protocol.error_response(exc.code, str(exc))
            else:
                response = await dispatch(service, frame)
            writer.write(protocol.encode_frame(response))
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def run_server(
    service: ClusterService,
    host: str = "127.0.0.1",
    port: int = 7171,
    *,
    resume: bool = False,
    ready: asyncio.Event | None = None,
    stop: asyncio.Event | None = None,
) -> None:
    """Run the TCP server until stopped, then drain gracefully.

    Args:
        service: the tenant registry to serve.
        host, port: bind address (``port=0`` picks a free port; the chosen
            one is printed on the ready line).
        resume: resurrect persisted tenants from ``service.data_dir``
            before accepting connections.
        ready: optional event set once the socket is listening (in-process
            harnesses).
        stop: optional external stop trigger; SIGTERM/SIGINT set it too.
    """
    if resume:
        resumed = service.resume_all()
        if resumed:
            print(f"serve: resumed {len(resumed)} session(s): {', '.join(resumed)}")
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or unsupported platform

    server = await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w),
        host,
        port,
        limit=_STREAM_LIMIT,
    )
    bound_port = server.sockets[0].getsockname()[1]
    service.port = bound_port
    print(f"serve: listening on {host}:{bound_port} (repro {__version__})", flush=True)
    if ready is not None:
        ready.set()
    async with server:
        await stop.wait()
        server.close()
        await server.wait_closed()
    report = await service.shutdown()
    drained = sum(1 for r in report.values() if r.get("checkpointed"))
    print(
        f"serve: drained {len(report)} session(s), "
        f"{drained} final checkpoint(s) written",
        flush=True,
    )


def main(args) -> int:
    """Entry point behind ``repro serve``.

    ``--shards N`` (N >= 1) hands the whole deployment to the sharded
    front end in :mod:`repro.serve.router`; ``--shards 0`` (the default)
    is the original single-process path, byte-for-byte.
    """
    if getattr(args, "shards", 0):
        from repro.serve import router

        return router.main(args)
    service = ClusterService(
        data_dir=args.data_dir,
        metrics_dir=args.metrics_dir,
        trace_dir=args.trace_dir,
        restart_budget=args.restart_budget,
        restart_backoff_s=args.restart_backoff,
        restart_reset_s=getattr(args, "restart_reset", 5.0),
    )
    try:
        asyncio.run(
            run_server(service, args.host, args.port, resume=args.resume)
        )
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    except ReproError as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 1
    return 0
