"""The asyncio TCP server: frames in, envelopes out, graceful drain.

The server is deliberately thin: each connection reads JSON-lines frames
and hands them to :func:`dispatch`, which translates ops into
:class:`~repro.serve.service.ClusterService` calls and failures into error
envelopes (a bad frame never kills a healthy connection; only an oversized
one does, because the stream cannot be resynchronised). All sessions are
shared across connections — any client may query a tenant another client
feeds.

``SIGTERM``/``SIGINT`` trigger the graceful path: stop accepting, drain
every tenant (flush queues, final checkpoints), close. ``kill -9`` skips
all of that by design — the recovery drill in CI proves the checkpoint
layer brings every tenant back exactly.
"""

from __future__ import annotations

import asyncio
import signal
import sys

from repro._version import __version__
from repro.common.errors import ReproError
from repro.serve import protocol
from repro.serve.config import SessionConfig
from repro.serve.protocol import ProtocolError, ServeError
from repro.serve.service import ClusterService

#: readline() needs headroom over the frame limit for the newline itself.
_STREAM_LIMIT = protocol.MAX_FRAME_BYTES + 1024


async def dispatch(service: ClusterService, frame: dict) -> dict:
    """Execute one request frame against the service; never raises."""
    rid = frame.get("id")
    op = frame.get("op")
    if op not in protocol.OPS:
        return protocol.error_response(
            "unknown-op", f"unknown op {op!r}; expected one of {protocol.OPS}", rid
        )
    try:
        return await _dispatch_op(service, op, frame, rid)
    except (ProtocolError, ServeError) as exc:
        return protocol.error_response(exc.code, str(exc), rid)
    except ReproError as exc:
        return protocol.error_response("bad-request", str(exc), rid)
    except Exception as exc:  # pragma: no cover - defensive envelope
        return protocol.error_response(
            "internal", f"{type(exc).__name__}: {exc}", rid
        )


def _session_name(frame: dict) -> str:
    name = frame.get("session")
    if not isinstance(name, str) or not name:
        raise ProtocolError(
            "bad-request", f"frame needs a string 'session' field, got {name!r}"
        )
    return name


async def _dispatch_op(
    service: ClusterService, op: str, frame: dict, rid
) -> dict:
    if op == "OPEN":
        name = _session_name(frame)
        config_payload = frame.get("config")
        if not isinstance(config_payload, dict):
            raise ProtocolError("bad-request", "OPEN needs a 'config' object")
        resume = frame.get("resume", "auto")
        if resume not in (True, False, "auto"):
            raise ProtocolError(
                "bad-request", f"resume must be true/false/'auto', got {resume!r}"
            )
        session = service.open(name, SessionConfig.from_dict(config_payload), resume=resume)
        return protocol.ok_response(
            op,
            rid,
            session=name,
            stride=session.view.stride,
            replay_offset=session.replay_offset,
            version=__version__,
        )

    if op == "INGEST":
        session = service.get(_session_name(frame))
        session.require_healthy()
        if session.draining:
            raise ServeError(
                "draining", f"session {session.name!r} is draining"
            )
        items = protocol.decode_points(
            frame.get("points"), start_seq=session.received
        )
        result = await session.offer(items)
        # Give the writer one scheduling slot so a failure caused by this
        # very batch (strict policy) surfaces in this response rather than
        # the next one.
        await asyncio.sleep(0)
        session.require_healthy()
        return protocol.ok_response(op, rid, session=session.name, **result)

    if op == "QUERY":
        session = service.get(_session_name(frame))
        session.queries += 1
        if "as_of" in frame:
            spec = frame["as_of"]
            if not isinstance(spec, dict) or not (
                set(spec) <= {"stride", "time"}
            ):
                raise ProtocolError(
                    "bad-request",
                    "as_of must be an object with 'stride' or 'time'",
                )
            try:
                stride = int(spec["stride"]) if "stride" in spec else None
                time = float(spec["time"]) if "time" in spec else None
            except (TypeError, ValueError) as exc:
                raise ProtocolError("bad-request", f"bad as_of: {exc}") from exc
            payload = session.as_of(stride=stride, time=time)
            if "pid" in frame:
                try:
                    pid = int(frame["pid"])
                except (TypeError, ValueError) as exc:
                    raise ProtocolError("bad-request", f"bad pid: {exc}") from exc
                key = str(pid)
                payload = {
                    "stride": payload["stride"],
                    "pid": pid,
                    "present": key in payload["categories"],
                    "label": payload["labels"].get(key),
                    "category": payload["categories"].get(key),
                }
            return protocol.ok_response(op, rid, session=session.name, **payload)
        view = session.view
        if "pid" in frame:
            try:
                pid = int(frame["pid"])
            except (TypeError, ValueError) as exc:
                raise ProtocolError("bad-request", f"bad pid: {exc}") from exc
            return protocol.ok_response(op, rid, **view.membership(pid))
        if "coords" in frame:
            coords = frame["coords"]
            try:
                coords = tuple(float(c) for c in coords)
            except (TypeError, ValueError) as exc:
                raise ProtocolError("bad-request", f"bad coords: {exc}") from exc
            if not coords:
                raise ProtocolError("bad-request", "coords must be non-empty")
            return protocol.ok_response(op, rid, **view.classify(coords))
        raise ProtocolError("bad-request", "QUERY needs 'pid' or 'coords'")

    if op == "SNAPSHOT":
        session = service.get(_session_name(frame))
        session.queries += 1
        return protocol.ok_response(op, rid, **session.view.snapshot_payload())

    if op == "EVENTS":
        session = service.get(_session_name(frame))
        session.queries += 1
        try:
            cursor = int(frame.get("cursor", 0))
            limit = frame.get("limit")
            limit = None if limit is None else int(limit)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad-request", f"bad cursor/limit: {exc}") from exc
        records, head, floor = session.events(cursor, limit=limit)
        next_cursor = (
            records[-1]["stride"] + 1 if records else max(cursor, floor)
        )
        return protocol.ok_response(
            op,
            rid,
            session=session.name,
            events=records,
            next_cursor=next_cursor,
            head=head,
            floor=floor,
        )

    if op == "SUBSCRIBE":
        # Handled by handle_connection (it owns the writer the pump task
        # streams to); reaching the plain dispatcher means the transport
        # cannot stream.
        raise ProtocolError(
            "bad-request", "SUBSCRIBE needs a streaming connection"
        )

    if op == "STATS":
        if frame.get("session") is None:
            return protocol.ok_response(op, rid, **service.stats())
        session = service.get(_session_name(frame))
        return protocol.ok_response(
            op, rid, version=__version__, **session.stats()
        )

    if op == "DRAIN":
        result = await service.drain(
            _session_name(frame), flush_tail=bool(frame.get("flush_tail", False))
        )
        return protocol.ok_response(op, rid, **result)

    # CLOSE
    name = _session_name(frame)
    await service.close(name)
    return protocol.ok_response(op, rid, session=name)


#: Journal records streamed per read while a pump catches up a backlog.
_PUMP_CHUNK = 256


async def _write_frame(writer, wlock: asyncio.Lock, frame: dict) -> None:
    """Write one frame under the connection's write lock.

    Responses from the request loop and push frames from pump tasks share
    one socket; the lock keeps whole frames from interleaving.
    """
    async with wlock:
        writer.write(protocol.encode_frame(frame))
        await writer.drain()


def _prepare_subscription(service, frame: dict):
    """Validate a ``SUBSCRIBE`` frame and register the subscriber.

    Returns ``(response, (session, sub, cursor, head) | None)``.
    Registration happens here — synchronously, before the success envelope
    is written — so no stride closed after the reply can be missed; the
    pump task is started only *after* the envelope is on the wire, so push
    frames never precede it.
    """
    rid = frame.get("id")
    try:
        name = _session_name(frame)
        session = service.get(name)
        session.require_healthy()
        try:
            cursor = int(frame.get("cursor", 0))
            queue_limit = int(frame.get("queue_limit", 256))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad-request", f"bad cursor/queue_limit: {exc}"
            ) from exc
        if queue_limit < 1:
            raise ProtocolError(
                "bad-request", f"queue_limit must be >= 1, got {queue_limit}"
            )
        policy = frame.get("policy", "block")
        sub, effective, head = session.subscribe(
            cursor=cursor, policy=policy, queue_limit=queue_limit
        )
    except (ProtocolError, ServeError) as exc:
        return protocol.error_response(exc.code, str(exc), rid), None
    except ReproError as exc:
        return protocol.error_response("bad-request", str(exc), rid), None
    response = protocol.ok_response(
        "SUBSCRIBE",
        rid,
        session=name,
        cursor=effective,
        head=head,
        policy=policy,
    )
    if effective > max(cursor, 0):
        # Retention compaction ate part of the asked range; tell the
        # client where its stream actually starts.
        response["truncated"] = True
    return response, (session, sub, effective, head)


async def _subscription_pump(
    session, sub, cursor: int, head: int, writer, wlock: asyncio.Lock
) -> None:
    """Stream one subscription: journal backlog, live queue, terminal frame.

    Records in ``[cursor, head)`` (strides journaled before registration)
    come from the journal; records from ``head`` on arrive through the
    subscriber queue the session writer fans out to. The two ranges are
    disjoint by construction, so the client sees every stride exactly once
    and in order.
    """
    name = session.name
    try:
        sub.task = asyncio.current_task()
        try:
            while cursor < head and not sub.closed:
                records = session.evjournal.read(
                    cursor, head, limit=_PUMP_CHUNK
                )
                if not records:
                    break  # compacted under us; resume at the live queue
                for record in records:
                    await _write_frame(
                        writer,
                        wlock,
                        {"push": "event", "session": name, "record": record},
                    )
                    cursor = record["stride"] + 1
        except ReproError as exc:
            sub.end(f"journal-error: {exc}")
        while not (sub.closed and sub.queue.empty()):
            record = await sub.queue.get()
            if record is None:
                break
            await _write_frame(
                writer,
                wlock,
                {"push": "event", "session": name, "record": record},
            )
            cursor = record["stride"] + 1
        await _write_frame(
            writer,
            wlock,
            {
                "push": "end",
                "session": name,
                "reason": sub.reason or "closed",
                "cursor": cursor,
            },
        )
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        session.unsubscribe(sub)


async def handle_connection(
    service: ClusterService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection: request/response, in order.

    ``SUBSCRIBE`` frames additionally spawn a pump task that interleaves
    push frames with later responses on the same socket (serialized by a
    per-connection write lock).
    """
    wlock = asyncio.Lock()
    pumps: set[asyncio.Task] = set()
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The stream cannot be resynchronised past an oversized
                # frame; report and hang up.
                await _write_frame(
                    writer,
                    wlock,
                    protocol.error_response(
                        "bad-frame", "frame exceeds the line limit"
                    ),
                )
                break
            if not line:
                break  # client hung up
            if line.strip() == b"":
                continue
            pump_args = None
            try:
                frame = protocol.decode_frame(line)
            except ProtocolError as exc:
                response = protocol.error_response(exc.code, str(exc))
            else:
                if frame.get("op") == "SUBSCRIBE":
                    response, pump_args = _prepare_subscription(service, frame)
                else:
                    response = await dispatch(service, frame)
            try:
                await _write_frame(writer, wlock, response)
            except BaseException:
                if pump_args is not None:
                    pump_args[0].unsubscribe(pump_args[1])
                raise
            if pump_args is not None:
                task = asyncio.create_task(
                    _subscription_pump(*pump_args, writer, wlock)
                )
                pumps.add(task)
                task.add_done_callback(pumps.discard)
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        for task in list(pumps):
            task.cancel()
        if pumps:
            await asyncio.gather(*pumps, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def run_server(
    service: ClusterService,
    host: str = "127.0.0.1",
    port: int = 7171,
    *,
    resume: bool = False,
    ready: asyncio.Event | None = None,
    stop: asyncio.Event | None = None,
) -> None:
    """Run the TCP server until stopped, then drain gracefully.

    Args:
        service: the tenant registry to serve.
        host, port: bind address (``port=0`` picks a free port; the chosen
            one is printed on the ready line).
        resume: resurrect persisted tenants from ``service.data_dir``
            before accepting connections.
        ready: optional event set once the socket is listening (in-process
            harnesses).
        stop: optional external stop trigger; SIGTERM/SIGINT set it too.
    """
    if resume:
        resumed = service.resume_all()
        if resumed:
            print(f"serve: resumed {len(resumed)} session(s): {', '.join(resumed)}")
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or unsupported platform

    server = await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w),
        host,
        port,
        limit=_STREAM_LIMIT,
    )
    bound_port = server.sockets[0].getsockname()[1]
    service.port = bound_port
    print(f"serve: listening on {host}:{bound_port} (repro {__version__})", flush=True)
    if ready is not None:
        ready.set()
    async with server:
        await stop.wait()
        server.close()
        await server.wait_closed()
    report = await service.shutdown()
    drained = sum(1 for r in report.values() if r.get("checkpointed"))
    print(
        f"serve: drained {len(report)} session(s), "
        f"{drained} final checkpoint(s) written",
        flush=True,
    )


def main(args) -> int:
    """Entry point behind ``repro serve``.

    ``--shards N`` (N >= 1) hands the whole deployment to the sharded
    front end in :mod:`repro.serve.router`; ``--shards 0`` (the default)
    is the original single-process path, byte-for-byte.
    """
    if getattr(args, "shards", 0):
        from repro.serve import router

        return router.main(args)
    service = ClusterService(
        data_dir=args.data_dir,
        metrics_dir=args.metrics_dir,
        trace_dir=args.trace_dir,
        restart_budget=args.restart_budget,
        restart_backoff_s=args.restart_backoff,
        restart_reset_s=getattr(args, "restart_reset", 5.0),
    )
    try:
        asyncio.run(
            run_server(service, args.host, args.port, resume=args.resume)
        )
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    except ReproError as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 1
    return 0
