"""High-level convenience API for the common streaming workflow.

Most users want exactly this loop: slice a stream by a sliding window, feed
each slide to DISC, and look at the snapshot per advance.
:func:`cluster_stream` packages it as a generator; :func:`cluster_static`
is the one-shot (no window) case.

When any resilience option is given — a checkpoint directory, ``resume``,
or an input-fault policy — :func:`cluster_stream` routes the run through
the :class:`~repro.runtime.supervisor.Supervisor` so crashes can be resumed
with byte-identical results and malformed input is handled by policy
instead of by luck. See ``docs/operations.md``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.common.config import WindowSpec
from repro.common.errors import ConfigurationError
from repro.common.points import StreamPoint
from repro.common.snapshot import Clustering
from repro.core.disc import DISC
from repro.core.events import StrideSummary
from repro.index.base import NeighborIndex
from repro.window.sliding import SlidingWindow


def cluster_stream(
    points: Iterable[StreamPoint],
    spec: WindowSpec,
    eps: float,
    tau: int,
    *,
    time_based: bool = False,
    clusterer=None,
    index: str | NeighborIndex | Callable[[], NeighborIndex] | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 16,
    resume: bool | str = False,
    on_malformed: str | None = None,
    dead_letter=None,
    stats=None,
    hooks=None,
    tracer=None,
) -> Iterator[tuple[Clustering, StrideSummary]]:
    """Cluster a stream under a sliding window, yielding per-stride results.

    Args:
        points: the stream, in arrival order.
        spec: window/stride sizes (counts, or durations if ``time_based``).
        eps, tau: DBSCAN thresholds (ignored when ``clusterer`` is given).
        time_based: interpret the spec as durations over point timestamps.
        clusterer: optional pre-built clusterer to drive instead of DISC.
        index: spatial-index backend for the default DISC clusterer — a
            registry name (see ``repro.index.registry``), a ready
            :class:`~repro.index.base.NeighborIndex`, or a factory. Ignored
            when ``clusterer`` is given.
        checkpoint_dir: directory for durable checkpoints; enables the
            resilient runtime (requires ``index`` to be a name or None).
        checkpoint_every: strides between checkpoints.
        resume: ``True`` to restore the latest checkpoint from
            ``checkpoint_dir`` (error when none), ``"auto"`` to resume only
            when one exists. Pass the stream from the beginning — the
            runtime skips what the checkpoint already covers.
        on_malformed: input-fault policy, ``"strict"`` / ``"skip"`` /
            ``"clamp"`` (see ``repro.runtime.policies``). ``None`` keeps
            the legacy unguarded path unless checkpointing is requested.
        dead_letter: optional
            :class:`~repro.runtime.policies.DeadLetterSink`.
        stats: optional :class:`~repro.runtime.stats.RuntimeStats` to fill.
        hooks: optional :class:`~repro.runtime.chaos.RuntimeHooks`.
        tracer: optional :class:`~repro.observability.trace.Tracer`; when
            given, the driven DISC emits one stride trace per advance
            (incompatible with ``clusterer=``, which the caller instruments
            directly).

    Yields:
        ``(snapshot, summary)`` after every window advance.

    Example:
        >>> from repro.api import cluster_stream
        >>> from repro.common.config import WindowSpec
        >>> from repro.datasets.synthetic import blob_stream
        >>> stream = blob_stream(300, [(0.0, 0.0), (5.0, 5.0)], seed=1)
        >>> results = list(
        ...     cluster_stream(stream, WindowSpec(100, 50), eps=0.8, tau=4)
        ... )
        >>> len(results)
        6
        >>> results[-1][0].num_clusters
        2
    """
    resilient = (
        checkpoint_dir is not None
        or bool(resume)
        or on_malformed is not None
        or dead_letter is not None
        or stats is not None
        or hooks is not None
    )
    if clusterer is not None and tracer is not None:
        raise ConfigurationError(
            "tracer= instruments the DISC built here; attach a tracer to "
            "your own clusterer directly instead of passing both"
        )
    if resilient:
        if clusterer is not None:
            raise ConfigurationError(
                "the resilient runtime drives DISC itself; "
                "clusterer= cannot be combined with checkpoint/resume/"
                "on_malformed options"
            )
        if index is not None and not isinstance(index, str):
            raise ConfigurationError(
                "the resilient runtime needs a registry index name (or "
                f"None) so checkpoints can be restored; got {index!r}"
            )
        from repro.runtime.supervisor import Supervisor

        supervisor = Supervisor(
            eps,
            tau,
            spec,
            store=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            index=index,
            time_based=time_based,
            policy=on_malformed if on_malformed is not None else "strict",
            dead_letter=dead_letter,
            stats=stats,
            hooks=hooks,
            tracer=tracer,
        )
        yield from supervisor.run(points, resume=resume)
        return
    method = (
        clusterer
        if clusterer is not None
        else DISC(eps, tau, index=index, tracer=tracer)
    )
    for delta_in, delta_out in SlidingWindow(spec, time_based).slides(points):
        summary = method.advance(delta_in, delta_out)
        if summary is None:
            summary = StrideSummary(
                num_inserted=len(delta_in), num_deleted=len(delta_out)
            )
        yield method.snapshot(), summary


def cluster_static(
    points: Iterable[StreamPoint],
    eps: float,
    tau: int,
    *,
    index: str | NeighborIndex | Callable[[], NeighborIndex] | None = None,
) -> Clustering:
    """One-shot DBSCAN clustering of a finite point set (no window).

    Args:
        points: the finite point set.
        eps, tau: DBSCAN thresholds.
        index: spatial-index backend (name, instance, or factory); defaults
            to the R-tree.

    Example:
        >>> from repro.api import cluster_static
        >>> from repro.datasets.synthetic import blob_stream
        >>> snap = cluster_static(
        ...     blob_stream(200, [(0.0, 0.0), (6.0, 6.0)], seed=2), 0.8, 4
        ... )
        >>> snap.num_clusters
        2
    """
    method = DISC(eps, tau, index=index)
    method.advance(list(points), ())
    return method.snapshot()
