"""Brute-force spatial index with the same interface as :class:`RTree`.

Used as the test oracle: every R-tree behaviour (plain and epoch-filtered
searches included) must agree with this index on identical workloads. It is
also a legitimate fallback for tiny windows where tree overhead dominates.

Distance evaluation goes through the shared
:func:`~repro.common.distance.dists_to_many` kernel over a lazily rebuilt
candidate matrix, so one vectorized pass replaces the per-point loop while
results keep the insertion order of the point table.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.distance import dists_to_many
from repro.common.errors import IndexError_
from repro.index.base import NeighborIndex
from repro.index.stats import IndexStats

Coords = tuple[float, ...]


class LinearScanIndex(NeighborIndex):
    """Dictionary-backed index scanning every point per search."""

    supports_epochs = True

    def __init__(self, stats: IndexStats | None = None) -> None:
        self._points: dict[int, Coords] = {}
        self._epochs: dict[int, int] = {}
        self._tick = 0
        self._pids: list[int] = []
        self._matrix: np.ndarray | None = None
        self._dirty = True
        self.stats = stats if stats is not None else IndexStats()

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    def coords_of(self, pid: int) -> Coords:
        return self._points[pid]

    def insert(self, pid: int, coords: Sequence[float]) -> None:
        if pid in self._points:
            raise IndexError_(f"point {pid} is already indexed")
        self.stats.inserts += 1
        self._points[pid] = tuple(coords)
        self._epochs[pid] = 0
        self._dirty = True

    def delete(self, pid: int) -> None:
        if pid not in self._points:
            raise IndexError_(f"point {pid} is not indexed")
        self.stats.deletes += 1
        del self._points[pid]
        del self._epochs[pid]
        self._dirty = True

    def _refresh(self) -> None:
        if not self._dirty:
            return
        self._pids = list(self._points)
        self._matrix = np.array(
            [self._points[pid] for pid in self._pids], dtype=np.float64
        )
        self._dirty = False

    def ball(self, center: Sequence[float], radius: float) -> list[tuple[int, Coords]]:
        """All points within ``radius`` of ``center`` (inclusive)."""
        self.stats.range_searches += 1
        self.stats.nodes_accessed += 1  # the flat point table is one "node"
        self.stats.entries_scanned += len(self._points)
        if not self._points:
            return []
        self._refresh()
        mask = dists_to_many(tuple(center), self._matrix) <= radius * radius
        points = self._points
        return [
            (pid, points[pid])
            for pid in (self._pids[i] for i in np.nonzero(mask)[0])
        ]

    def nearest(
        self, center: Sequence[float], k: int = 1
    ) -> list[tuple[int, Coords]]:
        """The k nearest points to ``center``, nearest first."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        self.stats.range_searches += 1
        self.stats.nodes_accessed += 1
        self.stats.entries_scanned += len(self._points)
        if not self._points:
            return []
        self._refresh()
        d_sq = dists_to_many(tuple(center), self._matrix)
        # Stable sort keeps insertion order among equidistant points, the
        # same tie-break the sorted() over the point dict used to give.
        order = np.argsort(d_sq, kind="stable")[:k]
        points = self._points
        return [(pid, points[pid]) for pid in (self._pids[i] for i in order)]

    def new_tick(self) -> int:
        self._tick += 1
        return self._tick

    def ball_unvisited(
        self,
        center: Sequence[float],
        radius: float,
        tick: int,
        should_mark=None,
    ) -> list[tuple[int, Coords]]:
        """Points in the ball not yet visited at ``tick``.

        Marking semantics mirror :meth:`repro.index.rtree.RTree.ball_unvisited`:
        a returned point is marked when ``should_mark`` is ``None`` or approves
        its pid; unmarked points keep being returned.
        """
        self.stats.range_searches += 1
        self.stats.nodes_accessed += 1
        self.stats.entries_scanned += len(self._points)
        if not self._points:
            return []
        self._refresh()
        d_sq = dists_to_many(tuple(center), self._matrix)
        r_sq = radius * radius
        results = []
        epochs = self._epochs
        points = self._points
        pruned = 0
        for i, pid in enumerate(self._pids):
            if epochs[pid] >= tick:
                pruned += 1  # skipped by the epoch filter before the distance test
                continue
            if d_sq[i] <= r_sq:
                if should_mark is None or should_mark(pid):
                    epochs[pid] = tick
                results.append((pid, points[pid]))
        self.stats.epoch_prunes += pruned
        return results

    def mark(self, pid: int, tick: int) -> None:
        """Mark one point visited during epoch ``tick`` (MS-BFS expansion)."""
        if pid not in self._epochs:
            raise IndexError_(f"point {pid} is not indexed")
        self._epochs[pid] = tick

    def items(self) -> list[tuple[int, Coords]]:
        return list(self._points.items())

    def check_invariants(self) -> None:
        """Interface parity with :class:`RTree`; nothing can go wrong here."""
        assert set(self._points) == set(self._epochs)
        if not self._dirty:
            assert self._matrix is not None
            assert self._pids == list(self._points)
