"""Brute-force spatial index with the same interface as :class:`RTree`.

Used as the test oracle: every R-tree behaviour (plain and epoch-filtered
searches included) must agree with this index on identical workloads. It is
also a legitimate fallback for tiny windows where tree overhead dominates.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.common.errors import IndexError_
from repro.index.base import NeighborIndex
from repro.index.stats import IndexStats

Coords = tuple[float, ...]


class LinearScanIndex(NeighborIndex):
    """Dictionary-backed index scanning every point per search."""

    supports_epochs = True

    def __init__(self, stats: IndexStats | None = None) -> None:
        self._points: dict[int, Coords] = {}
        self._epochs: dict[int, int] = {}
        self._tick = 0
        self.stats = stats if stats is not None else IndexStats()

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    def coords_of(self, pid: int) -> Coords:
        return self._points[pid]

    def insert(self, pid: int, coords: Sequence[float]) -> None:
        if pid in self._points:
            raise IndexError_(f"point {pid} is already indexed")
        self.stats.inserts += 1
        self._points[pid] = tuple(coords)
        self._epochs[pid] = 0

    def delete(self, pid: int) -> None:
        if pid not in self._points:
            raise IndexError_(f"point {pid} is not indexed")
        self.stats.deletes += 1
        del self._points[pid]
        del self._epochs[pid]

    def ball(self, center: Sequence[float], radius: float) -> list[tuple[int, Coords]]:
        """All points within ``radius`` of ``center`` (inclusive)."""
        self.stats.range_searches += 1
        self.stats.nodes_accessed += 1  # the flat point table is one "node"
        center = tuple(center)
        results = []
        dist = math.dist
        self.stats.entries_scanned += len(self._points)
        for pid, coords in self._points.items():
            if dist(coords, center) <= radius:
                results.append((pid, coords))
        return results

    def nearest(
        self, center: Sequence[float], k: int = 1
    ) -> list[tuple[int, Coords]]:
        """The k nearest points to ``center``, nearest first."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        self.stats.range_searches += 1
        self.stats.nodes_accessed += 1
        center = tuple(center)
        dist = math.dist
        self.stats.entries_scanned += len(self._points)
        ranked = sorted(
            self._points.items(), key=lambda item: dist(item[1], center)
        )
        return ranked[:k]

    def new_tick(self) -> int:
        self._tick += 1
        return self._tick

    def ball_unvisited(
        self,
        center: Sequence[float],
        radius: float,
        tick: int,
        should_mark=None,
    ) -> list[tuple[int, Coords]]:
        """Points in the ball not yet visited at ``tick``.

        Marking semantics mirror :meth:`repro.index.rtree.RTree.ball_unvisited`:
        a returned point is marked when ``should_mark`` is ``None`` or approves
        its pid; unmarked points keep being returned.
        """
        self.stats.range_searches += 1
        self.stats.nodes_accessed += 1
        center = tuple(center)
        results = []
        epochs = self._epochs
        dist = math.dist
        pruned = 0
        self.stats.entries_scanned += len(self._points)
        for pid, coords in self._points.items():
            if epochs[pid] >= tick:
                pruned += 1  # skipped by the epoch filter before the distance test
                continue
            if dist(coords, center) <= radius:
                if should_mark is None or should_mark(pid):
                    epochs[pid] = tick
                results.append((pid, coords))
        self.stats.epoch_prunes += pruned
        return results

    def mark(self, pid: int, tick: int) -> None:
        """Mark one point visited during epoch ``tick`` (MS-BFS expansion)."""
        if pid not in self._epochs:
            raise IndexError_(f"point {pid} is not indexed")
        self._epochs[pid] = tick

    def items(self) -> list[tuple[int, Coords]]:
        return list(self._points.items())

    def check_invariants(self) -> None:
        """Interface parity with :class:`RTree`; nothing can go wrong here."""
        assert set(self._points) == set(self._epochs)

