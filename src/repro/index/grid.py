"""Cell-grid index used by the rho-double-approximate DBSCAN baseline.

Space is tiled into hypercubes of side ``eps / sqrt(d)``, so any two points in
the same cell are within ``eps`` of each other (the standard grid trick from
Gan & Tao). Cells within reach of a query ball are enumerated through a
precomputed offset stencil.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence

from repro.common.errors import IndexError_
from repro.index.base import NeighborIndex
from repro.index.stats import IndexStats

Coords = tuple[float, ...]
CellKey = tuple[int, ...]


class GridIndex(NeighborIndex):
    """Uniform grid over points, sized for an epsilon-neighbourhood workload.

    Args:
        eps: the distance threshold the grid is tuned for; the cell side is
            ``eps / sqrt(dim)``.
        dim: dimensionality of the points; when omitted the grid stays
            dormant until the first insertion reveals it (which is how the
            backend registry builds grids before any data has arrived).
    """

    def __init__(
        self, eps: float, dim: int | None = None, stats: IndexStats | None = None
    ) -> None:
        if eps <= 0:
            raise IndexError_(f"eps must be positive, got {eps}")
        self.eps = eps
        self.radius_cap = eps
        self.dim = dim
        self.side: float | None = None
        self._stencil: list[CellKey] | None = None
        self._cells: dict[CellKey, dict[int, Coords]] = {}
        self._where: dict[int, CellKey] = {}
        self.stats = stats if stats is not None else IndexStats()
        if dim is not None:
            self._set_dim(dim)

    def _set_dim(self, dim: int) -> None:
        if dim < 1:
            raise IndexError_(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.side = self.eps / math.sqrt(dim)
        self._stencil = self._build_stencil()

    def _build_stencil(self) -> list[CellKey]:
        """Offsets of all cells that can contain a point within eps.

        A cell at offset ``o`` (in cell units) is reachable when the minimum
        distance between the two cells is at most eps.
        """
        reach = math.ceil(math.sqrt(self.dim)) + 1
        offsets = []
        for offset in itertools.product(range(-reach, reach + 1), repeat=self.dim):
            min_dist_sq = 0.0
            for o in offset:
                gap = (abs(o) - 1) * self.side
                if gap > 0:
                    min_dist_sq += gap * gap
            if min_dist_sq <= self.eps * self.eps:
                offsets.append(offset)
        return offsets

    def cell_of(self, coords: Sequence[float]) -> CellKey:
        """Key of the cell containing ``coords``."""
        return tuple(int(math.floor(x / self.side)) for x in coords)

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, pid: int) -> bool:
        return pid in self._where

    def coords_of(self, pid: int) -> Coords:
        return self._cells[self._where[pid]][pid]

    def insert(self, pid: int, coords: Sequence[float]) -> None:
        if pid in self._where:
            raise IndexError_(f"point {pid} is already indexed")
        self.stats.inserts += 1
        coords = tuple(coords)
        if self.side is None:
            self._set_dim(len(coords))
        key = self.cell_of(coords)
        self._cells.setdefault(key, {})[pid] = coords
        self._where[pid] = key

    def delete(self, pid: int) -> None:
        key = self._where.pop(pid, None)
        if key is None:
            raise IndexError_(f"point {pid} is not indexed")
        self.stats.deletes += 1
        cell = self._cells[key]
        del cell[pid]
        if not cell:
            del self._cells[key]

    def items(self) -> list[tuple[int, Coords]]:
        return [
            (pid, self._cells[key][pid]) for pid, key in self._where.items()
        ]

    def cell_points(self, key: CellKey) -> dict[int, Coords]:
        """Points in one cell (empty dict when the cell is vacant)."""
        return self._cells.get(key, {})

    def neighbour_cells(self, key: CellKey) -> list[CellKey]:
        """Keys of occupied cells within eps-reach of ``key`` (self included)."""
        found = []
        cells = self._cells
        for offset in self._stencil:
            other = tuple(k + o for k, o in zip(key, offset))
            if other in cells:
                found.append(other)
        return found

    def occupied_cells(self) -> list[CellKey]:
        return list(self._cells)

    def ball(self, center: Sequence[float], radius: float) -> list[tuple[int, Coords]]:
        """All points within ``radius`` of ``center``.

        Only supported for ``radius <= eps`` (the stencil guarantees coverage
        up to eps); larger radii raise.
        """
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        self.stats.range_searches += 1
        if self.side is None:  # dormant: nothing has ever been inserted
            return []
        center = tuple(center)
        results = []
        dist = math.dist
        for key in self.neighbour_cells(self.cell_of(center)):
            cell = self._cells[key]
            self.stats.nodes_accessed += 1  # one occupied cell visited
            self.stats.entries_scanned += len(cell)
            for pid, coords in cell.items():
                if dist(coords, center) <= radius:
                    results.append((pid, coords))
        return results

