"""A numpy-vectorized cell-grid index for dense, large windows.

Cells here have side ``eps`` (unlike :class:`~repro.index.grid.GridIndex`'s
``eps / sqrt(d)``), so a ball query touches only the 3^d surrounding cells
and each cell contributes one vectorized distance evaluation over a sizeable
batch.

An honest performance note, measured on this substrate: for :meth:`ball`
(which must materialise a Python list of ``(pid, coords)`` matches) the
result-building loop dominates and the vectorized index only breaks even
with the plain grid. Where vectorization genuinely pays is *counting*:
:meth:`count_ball` answers "how many points within eps" several times faster
than materialising the ball, because the reduction stays inside numpy. That
is exactly the operation density calibration (``repro.metrics.kdist``) and
count-only maintenance need.

The interface matches the other indexes (insert/delete/ball/coords_of/...),
so any clusterer accepts it via ``index_factory``.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence

import numpy as np

from repro.common.distance import dists_to_many
from repro.common.errors import IndexError_
from repro.index.base import NeighborIndex
from repro.index.stats import IndexStats

Coords = tuple[float, ...]
CellKey = tuple[int, ...]

# Cap on the pairwise-distance block a batched query materialises at once
# (centers x candidates); groups larger than this are chunked.
_BATCH_PAIR_BUDGET = 1 << 20

# Bits per dimension when packing a cell key into one int64 (dims 1-3).
_CODE_BITS = 21
_CODE_OFF = 1 << (_CODE_BITS - 1)


class _Cell:
    """One occupied cell: a point dict plus a lazily built matrix."""

    __slots__ = ("points", "pids", "pid_arr", "matrix", "dirty")

    def __init__(self) -> None:
        self.points: dict[int, Coords] = {}
        self.pids: list[int] = []
        self.pid_arr: np.ndarray | None = None
        self.matrix: np.ndarray | None = None
        self.dirty = True

    def refresh(self) -> None:
        if not self.dirty:
            return
        self.pids = list(self.points)
        self.pid_arr = np.fromiter(self.pids, dtype=np.int64, count=len(self.pids))
        self.matrix = np.array(
            [self.points[pid] for pid in self.pids], dtype=np.float64
        )
        self.dirty = False


class VectorGridIndex(NeighborIndex):
    """Vectorized uniform grid tuned for one epsilon.

    Args:
        eps: the distance threshold (and cell side).
        dim: point dimensionality; when omitted the 3^d stencil is built
            lazily from the first inserted point (registry-built grids do
            not know the dimensionality up front).
    """

    def __init__(
        self, eps: float, dim: int | None = None, stats: IndexStats | None = None
    ) -> None:
        if eps <= 0:
            raise IndexError_(f"eps must be positive, got {eps}")
        self.eps = eps
        self.radius_cap = eps
        self.dim = dim
        self.side = eps
        self._cells: dict[CellKey, _Cell] = {}
        self._where: dict[int, CellKey] = {}
        # Insertion-ordered pid -> coords mirror; the flat rebuild reads it
        # with one bulk np.array instead of walking every cell.
        self._coords: dict[int, Coords] = {}
        # Concatenated 3^d neighbourhoods keyed by cell, reused by the
        # batched ids-only queries. Invalidation is precise: a mutation in
        # cell K pops only the hoods whose stencil covers K (K's own 3^d
        # neighbours), so hoods over stable regions survive entire strides.
        self._hoods: dict[CellKey, tuple] = {}
        # Flat sorted-by-cell-code arrays backing the fully vectorized
        # batched path; rebuilt lazily after any mutation.
        self._flat: tuple | None = None
        self.stats = stats if stats is not None else IndexStats()
        # With side == eps, any point within eps of the query lies in one of
        # the 3^d surrounding cells.
        self._stencil: list[CellKey] | None = None
        self._shift_list: list[int] | None = None
        self._shifts: np.ndarray | None = None
        self._deltas: np.ndarray | None = None
        if dim is not None:
            self._set_dim(dim)

    def _set_dim(self, dim: int) -> None:
        if dim < 1:
            raise IndexError_(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._stencil = list(itertools.product((-1, 0, 1), repeat=dim))
        # Packed-code machinery for the flat batched path (dims 1-3): cell
        # keys pack into one int64, 21 bits per dimension, so a stencil
        # neighbour's code is the center's code plus a constant delta and a
        # whole batch of stencil walks collapses into one vectorized add.
        if dim <= 3:
            shifts = [1 << (_CODE_BITS * (dim - 1 - i)) for i in range(dim)]
            self._shift_list = shifts
            self._shifts = np.asarray(shifts, dtype=np.int64)
            self._deltas = np.asarray(
                [
                    sum(o * s for o, s in zip(offset, shifts))
                    for offset in self._stencil
                ],
                dtype=np.int64,
            )
        else:
            self._shift_list = None
            self._shifts = None
            self._deltas = None

    def cell_of(self, coords: Sequence[float]) -> CellKey:
        return tuple(int(math.floor(x / self.side)) for x in coords)

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, pid: int) -> bool:
        return pid in self._where

    def coords_of(self, pid: int) -> Coords:
        return self._coords[pid]

    def insert(self, pid: int, coords: Sequence[float]) -> None:
        if pid in self._where:
            raise IndexError_(f"point {pid} is already indexed")
        self.stats.inserts += 1
        coords = tuple(coords)
        if self._stencil is None:
            self._set_dim(len(coords))
        key = self.cell_of(coords)
        cell = self._cells.get(key)
        if cell is None:
            cell = _Cell()
            self._cells[key] = cell
        cell.points[pid] = coords
        cell.dirty = True
        self._invalidate_hoods(key)
        self._flat = None
        self._where[pid] = key
        self._coords[pid] = coords

    def delete(self, pid: int) -> None:
        key = self._where.pop(pid, None)
        if key is None:
            raise IndexError_(f"point {pid} is not indexed")
        self.stats.deletes += 1
        self._invalidate_hoods(key)
        self._flat = None
        del self._coords[pid]
        cell = self._cells[key]
        del cell.points[pid]
        if cell.points:
            cell.dirty = True
        else:
            del self._cells[key]

    def ball(self, center: Sequence[float], radius: float) -> list[tuple[int, Coords]]:
        """All points within ``radius`` of ``center`` (radius <= eps)."""
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        self.stats.range_searches += 1
        if self._stencil is None:  # dormant: nothing has ever been inserted
            return []
        center_arr = np.asarray(center, dtype=np.float64)
        r_sq = radius * radius
        key = self.cell_of(center)
        results: list[tuple[int, Coords]] = []
        cells = self._cells
        for offset in self._stencil:
            other = tuple(k + o for k, o in zip(key, offset))
            cell = cells.get(other)
            if cell is None:
                continue
            cell.refresh()
            self.stats.nodes_accessed += 1  # one occupied cell visited
            self.stats.entries_scanned += len(cell.pids)
            mask = dists_to_many(center_arr, cell.matrix) <= r_sq
            points = cell.points
            for idx in np.nonzero(mask)[0]:
                pid = cell.pids[idx]
                results.append((pid, points[pid]))
        return results

    def count_ball(self, center: Sequence[float], radius: float) -> int:
        """Number of points within ``radius`` of ``center`` (radius <= eps).

        Fully vectorized — no per-match Python work — and therefore much
        faster than ``len(ball(...))`` on dense data.
        """
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        self.stats.range_searches += 1
        if self._stencil is None:
            return 0
        center_arr = np.asarray(center, dtype=np.float64)
        r_sq = radius * radius
        key = self.cell_of(center)
        total = 0
        cells = self._cells
        for offset in self._stencil:
            other = tuple(k + o for k, o in zip(key, offset))
            cell = cells.get(other)
            if cell is None:
                continue
            cell.refresh()
            self.stats.nodes_accessed += 1
            self.stats.entries_scanned += len(cell.pids)
            total += int(
                np.count_nonzero(dists_to_many(center_arr, cell.matrix) <= r_sq)
            )
        return total

    # ----------------------------------------------------------- batched layer

    def _batched_groups(self, centers):
        """Group centers by cell; yield (center indices, pairs, matrix).

        Centers sharing a cell query the identical 3^d neighbourhood, so its
        candidate matrices are concatenated once and reused for the whole
        group. ``pairs`` lists the candidates as (pid, coords) in exactly the
        order :meth:`ball` would visit them (stencil order, then cell row
        order), so masked row selection reproduces per-center results.
        """
        groups: dict[CellKey, list[int]] = {}
        for i, center in enumerate(centers):
            groups.setdefault(self.cell_of(center), []).append(i)
        cells = self._cells
        for key, idxs in groups.items():
            pairs: list[tuple[int, Coords]] = []
            mats = []
            for offset in self._stencil:
                cell = cells.get(tuple(k + o for k, o in zip(key, offset)))
                if cell is None:
                    continue
                cell.refresh()
                points = cell.points
                pairs.extend((pid, points[pid]) for pid in cell.pids)
                mats.append(cell.matrix)
                # Counted once per center sharing the group, so the batched
                # totals stay identical to per-center loops.
                self.stats.nodes_accessed += len(idxs)
                self.stats.entries_scanned += len(cell.pids) * len(idxs)
            block = None
            if mats:
                block = mats[0] if len(mats) == 1 else np.concatenate(mats)
            yield idxs, pairs, block

    def count_ball_many(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[int]:
        """Vectorized batch counting; results identical to looped calls.

        All centers falling in one cell share a single pairwise distance
        evaluation against the concatenated neighbourhood matrices, chunked
        so no intermediate block exceeds the pair budget.
        """
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        counts = [0] * len(centers)
        self.stats.range_searches += len(centers)
        if self._stencil is None or not centers:
            return counts
        arr = np.asarray(centers, dtype=np.float64)
        r_sq = radius * radius
        for idxs, _, block in self._batched_groups(centers):
            if block is None:
                continue
            step = max(1, _BATCH_PAIR_BUDGET // max(1, len(block)))
            for lo in range(0, len(idxs), step):
                chunk = idxs[lo : lo + step]
                hits = np.count_nonzero(
                    dists_to_many(arr[chunk], block) <= r_sq, axis=1
                )
                for row, i in enumerate(chunk):
                    counts[i] = int(hits[row])
        return counts

    def ball_many(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[list[tuple[int, Coords]]]:
        """Vectorized batch ball search; per-center results match :meth:`ball`."""
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        out: list[list[tuple[int, Coords]]] = [[] for _ in centers]
        self.stats.range_searches += len(centers)
        if self._stencil is None or not centers:
            return out
        arr = np.asarray(centers, dtype=np.float64)
        r_sq = radius * radius
        for idxs, pairs, block in self._batched_groups(centers):
            if block is None:
                continue
            step = max(1, _BATCH_PAIR_BUDGET // max(1, len(block)))
            for lo in range(0, len(idxs), step):
                chunk = idxs[lo : lo + step]
                within = dists_to_many(arr[chunk], block) <= r_sq
                for row, i in enumerate(chunk):
                    out[i] = [pairs[j] for j in np.nonzero(within[row])[0]]
        return out

    def _invalidate_hoods(self, key: CellKey) -> None:
        """Drop every cached neighbourhood whose stencil covers ``key``."""
        hoods = self._hoods
        if not hoods:
            return
        pop = hoods.pop
        for offset in self._stencil:
            pop(tuple(k + o for k, o in zip(key, offset)), None)

    def _hood(self, key: CellKey) -> tuple:
        """The concatenated 3^d neighbourhood of ``key``, cached until a
        mutation lands in one of its cells: ``(block, cand, n_cells,
        n_entries)`` with the candidate matrix, the matching pid array, and
        the occupied-cell / entry totals the stats ledger charges per
        visiting center."""
        hood = self._hoods.get(key)
        if hood is None:
            mats = []
            pid_arrs = []
            n_cells = n_entries = 0
            cells = self._cells
            for offset in self._stencil:
                cell = cells.get(tuple(k + o for k, o in zip(key, offset)))
                if cell is None:
                    continue
                cell.refresh()
                mats.append(cell.matrix)
                pid_arrs.append(cell.pid_arr)
                n_cells += 1
                n_entries += len(cell.pids)
            if not mats:
                hood = (None, None, 0, 0)
            else:
                block = mats[0] if len(mats) == 1 else np.concatenate(mats)
                cand = (
                    pid_arrs[0]
                    if len(pid_arrs) == 1
                    else np.concatenate(pid_arrs)
                )
                hood = (block, cand, n_cells, n_entries)
            self._hoods[key] = hood
        return hood

    def _refresh_flat(self) -> None:
        """Rebuild the flat packed-code layout after mutations.

        Cells are laid out contiguously in ascending packed-code order:
        ``codes[j]`` owns rows ``starts[j]:starts[j + 1]`` of the flat pid
        and coordinate arrays, preserving each cell's insertion order. Keys
        outside the packable range mark the layout unusable and the batched
        query falls back to the grouped path.
        """
        if self._deltas is None:  # dim > 3: codes do not fit one int64
            self._flat = (False,)
            return
        n = len(self._coords)
        if n == 0:
            self._flat = (
                True,
                np.empty(0, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty((0, self.dim or 1), dtype=np.float64),
            )
            return
        pids = np.fromiter(self._coords.keys(), dtype=np.int64, count=n)
        coords = np.array(list(self._coords.values()), dtype=np.float64)
        keys = np.floor(coords / self.side).astype(np.int64)
        if int(np.abs(keys).max()) > _CODE_OFF - 2:
            self._flat = (False,)
            return
        codes_all = (keys + _CODE_OFF) @ self._shifts
        # The stable sort keeps same-cell points in insertion order — the
        # order :meth:`ball` reports them in.
        order = np.argsort(codes_all, kind="stable")
        sorted_codes = codes_all[order]
        first = np.concatenate(
            ([0], np.nonzero(np.diff(sorted_codes))[0] + 1)
        )
        starts = np.concatenate((first, [n]))
        self._flat = (
            True, sorted_codes[first], starts, pids[order], coords[order]
        )

    def ball_many_pids(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[np.ndarray]:
        """Ids-only batch ball search; per-center pids match :meth:`ball`.

        The whole batch runs as one numpy expression over the flat packed
        layout: cell keys pack into int64 codes, every center's 3^d stencil
        walk becomes one broadcast add against :attr:`_deltas`, occupied
        neighbours resolve via one ``searchsorted`` against the sorted cell
        codes, and a single ragged gather + distance mask yields every
        match. No per-cell or per-center Python work remains. Dimensions
        above 3 (or coordinates past the packable range) use the grouped
        neighbourhood-cache path instead; results and stats totals are
        identical either way, and both match per-center :meth:`ball` loops.
        """
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        empty = np.empty(0, dtype=np.int64)
        m = len(centers)
        if self._stencil is None or not m:
            self.stats.range_searches += m
            return [empty] * m
        if self._deltas is None:
            return self._ball_many_pids_grouped(centers, radius)
        if self._flat is None:
            self._refresh_flat()
        flat = self._flat
        if not flat[0]:
            return self._ball_many_pids_grouped(centers, radius)
        _, codes, starts, pids, coords = flat
        arr = np.asarray(centers, dtype=np.float64)
        keys = np.floor(arr / self.side).astype(np.int64)
        if len(keys) and int(np.abs(keys).max()) > _CODE_OFF - 2:
            return self._ball_many_pids_grouped(centers, radius)
        stats = self.stats
        stats.range_searches += m
        n_codes = len(codes)
        if n_codes == 0:
            return [empty] * m
        center_codes = (keys + _CODE_OFF) @ self._shifts
        neigh = (center_codes[:, None] + self._deltas[None, :]).ravel()
        idx = np.searchsorted(codes, neigh)
        idx_c = np.minimum(idx, n_codes - 1)
        valid = (idx < n_codes) & (codes[idx_c] == neigh)
        cnt = np.where(valid, starts[idx_c + 1] - starts[idx_c], 0)
        total = int(cnt.sum())
        stats.nodes_accessed += int(np.count_nonzero(valid))
        stats.entries_scanned += total
        if total == 0:
            return [empty] * m
        # Ragged gather: for every (center, occupied neighbour) segment,
        # enumerate that cell's flat rows in order.
        seg_ends = np.cumsum(cnt)
        cellstart = np.where(valid, starts[idx_c], 0)
        cand_idx = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_ends - cnt, cnt)
            + np.repeat(cellstart, cnt)
        )
        owner = np.repeat(
            np.arange(m, dtype=np.int64), cnt.reshape(m, -1).sum(axis=1)
        )
        diff = coords[cand_idx] - arr[owner]
        within = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        match_pids = pids[cand_idx[within]]
        bounds = np.searchsorted(owner[within], np.arange(m + 1))
        return [match_pids[bounds[i] : bounds[i + 1]] for i in range(m)]

    def ball_pids(self, center: Sequence[float], radius: float) -> np.ndarray:
        """Ids-only single ball over the flat packed layout.

        The per-call cost is a handful of numpy ops regardless of how many
        cells the stencil covers — this is what keeps MS-BFS expansions
        (which are inherently sequential and cannot batch) cheap on the
        columnar path. Pids come back in exact :meth:`ball` order.
        """
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        if self._stencil is None:
            self.stats.range_searches += 1
            return np.empty(0, dtype=np.int64)
        if self._deltas is None:
            return super().ball_pids(center, radius)
        if self._flat is None:
            self._refresh_flat()
        flat = self._flat
        if not flat[0]:
            return super().ball_pids(center, radius)
        key = self.cell_of(center)
        if any(abs(k) > _CODE_OFF - 2 for k in key):
            return super().ball_pids(center, radius)
        _, codes, starts, pids, coords = flat
        stats = self.stats
        stats.range_searches += 1
        n_codes = len(codes)
        if n_codes == 0:
            return np.empty(0, dtype=np.int64)
        code = 0
        for k, s in zip(key, self._shift_list):
            code += (k + _CODE_OFF) * s
        neigh = code + self._deltas
        idx = np.searchsorted(codes, neigh)
        idx_c = np.minimum(idx, n_codes - 1)
        valid = (idx < n_codes) & (codes[idx_c] == neigh)
        cnt = np.where(valid, starts[idx_c + 1] - starts[idx_c], 0)
        total = int(cnt.sum())
        stats.nodes_accessed += int(np.count_nonzero(valid))
        stats.entries_scanned += total
        if total == 0:
            return np.empty(0, dtype=np.int64)
        seg_ends = np.cumsum(cnt)
        cand_idx = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_ends - cnt, cnt)
            + np.repeat(np.where(valid, starts[idx_c], 0), cnt)
        )
        diff = coords[cand_idx] - np.asarray(center, dtype=np.float64)
        within = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        return pids[cand_idx[within]]

    def _ball_many_pids_grouped(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[np.ndarray]:
        """Grouped fallback for :meth:`ball_many_pids` (dim > 3 / overflow).

        Centers sharing a cell compress that cell's cached neighbourhood
        (:meth:`_hood`) with one distance mask each; candidate tuples are
        never built.
        """
        empty = np.empty(0, dtype=np.int64)
        out: list[np.ndarray] = [empty] * len(centers)
        self.stats.range_searches += len(centers)
        arr = np.asarray(centers, dtype=np.float64)
        r_sq = radius * radius
        groups: dict[CellKey, list[int]] = {}
        for i, center in enumerate(centers):
            groups.setdefault(self.cell_of(center), []).append(i)
        stats = self.stats
        for key, idxs in groups.items():
            block, cand, n_cells, n_entries = self._hood(key)
            stats.nodes_accessed += n_cells * len(idxs)
            stats.entries_scanned += n_entries * len(idxs)
            if block is None:
                continue
            step = max(1, _BATCH_PAIR_BUDGET // max(1, len(block)))
            for lo in range(0, len(idxs), step):
                chunk = idxs[lo : lo + step]
                within = dists_to_many(arr[chunk], block) <= r_sq
                for row, i in enumerate(chunk):
                    out[i] = cand[within[row]]
        return out

    def items(self) -> list[tuple[int, Coords]]:
        return list(self._coords.items())

    def check_invariants(self) -> None:
        """Consistency of the cell maps and matrix caches."""
        total = 0
        for key, cell in self._cells.items():
            assert cell.points, f"empty cell {key} not pruned"
            total += len(cell.points)
            for pid, coords in cell.points.items():
                assert self._where[pid] == key
                assert self.cell_of(coords) == key
            if not cell.dirty:
                assert cell.matrix is not None
                assert len(cell.pids) == len(cell.points)
        assert total == len(self._where)
        for key, (block, cand, n_cells, n_entries) in self._hoods.items():
            fresh_cells = fresh_entries = 0
            for offset in self._stencil:
                cell = self._cells.get(tuple(k + o for k, o in zip(key, offset)))
                if cell is not None:
                    fresh_cells += 1
                    fresh_entries += len(cell.points)
            assert (n_cells, n_entries) == (fresh_cells, fresh_entries), (
                f"stale neighbourhood cache for cell {key}"
            )
            assert (block is None) == (n_entries == 0)
            assert block is None or len(block) == len(cand) == n_entries
        if self._flat is not None and self._flat[0]:
            _, codes, starts, pids, coords = self._flat
            assert len(codes) == len(self._cells), "stale flat layout"
            assert np.all(np.diff(codes) > 0), "flat cell codes not sorted"
            assert starts[-1] == len(pids) == len(coords) == len(self._where)
            assert set(pids.tolist()) == set(self._where)
