"""A numpy-vectorized cell-grid index for dense, large windows.

Cells here have side ``eps`` (unlike :class:`~repro.index.grid.GridIndex`'s
``eps / sqrt(d)``), so a ball query touches only the 3^d surrounding cells
and each cell contributes one vectorized distance evaluation over a sizeable
batch.

An honest performance note, measured on this substrate: for :meth:`ball`
(which must materialise a Python list of ``(pid, coords)`` matches) the
result-building loop dominates and the vectorized index only breaks even
with the plain grid. Where vectorization genuinely pays is *counting*:
:meth:`count_ball` answers "how many points within eps" several times faster
than materialising the ball, because the reduction stays inside numpy. That
is exactly the operation density calibration (``repro.metrics.kdist``) and
count-only maintenance need.

The interface matches the other indexes (insert/delete/ball/coords_of/...),
so any clusterer accepts it via ``index_factory``.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence

import numpy as np

from repro.common.errors import IndexError_
from repro.index.base import NeighborIndex
from repro.index.stats import IndexStats

Coords = tuple[float, ...]
CellKey = tuple[int, ...]

# Cap on the pairwise-distance block a batched query materialises at once
# (centers x candidates); groups larger than this are chunked.
_BATCH_PAIR_BUDGET = 1 << 20


class _Cell:
    """One occupied cell: a point dict plus a lazily built matrix."""

    __slots__ = ("points", "pids", "matrix", "dirty")

    def __init__(self) -> None:
        self.points: dict[int, Coords] = {}
        self.pids: list[int] = []
        self.matrix: np.ndarray | None = None
        self.dirty = True

    def refresh(self) -> None:
        if not self.dirty:
            return
        self.pids = list(self.points)
        self.matrix = np.array(
            [self.points[pid] for pid in self.pids], dtype=np.float64
        )
        self.dirty = False


class VectorGridIndex(NeighborIndex):
    """Vectorized uniform grid tuned for one epsilon.

    Args:
        eps: the distance threshold (and cell side).
        dim: point dimensionality; when omitted the 3^d stencil is built
            lazily from the first inserted point (registry-built grids do
            not know the dimensionality up front).
    """

    def __init__(
        self, eps: float, dim: int | None = None, stats: IndexStats | None = None
    ) -> None:
        if eps <= 0:
            raise IndexError_(f"eps must be positive, got {eps}")
        self.eps = eps
        self.radius_cap = eps
        self.dim = dim
        self.side = eps
        self._cells: dict[CellKey, _Cell] = {}
        self._where: dict[int, CellKey] = {}
        self.stats = stats if stats is not None else IndexStats()
        # With side == eps, any point within eps of the query lies in one of
        # the 3^d surrounding cells.
        self._stencil: list[CellKey] | None = None
        if dim is not None:
            self._set_dim(dim)

    def _set_dim(self, dim: int) -> None:
        if dim < 1:
            raise IndexError_(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._stencil = list(itertools.product((-1, 0, 1), repeat=dim))

    def cell_of(self, coords: Sequence[float]) -> CellKey:
        return tuple(int(math.floor(x / self.side)) for x in coords)

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, pid: int) -> bool:
        return pid in self._where

    def coords_of(self, pid: int) -> Coords:
        return self._cells[self._where[pid]].points[pid]

    def insert(self, pid: int, coords: Sequence[float]) -> None:
        if pid in self._where:
            raise IndexError_(f"point {pid} is already indexed")
        self.stats.inserts += 1
        coords = tuple(coords)
        if self._stencil is None:
            self._set_dim(len(coords))
        key = self.cell_of(coords)
        cell = self._cells.get(key)
        if cell is None:
            cell = _Cell()
            self._cells[key] = cell
        cell.points[pid] = coords
        cell.dirty = True
        self._where[pid] = key

    def delete(self, pid: int) -> None:
        key = self._where.pop(pid, None)
        if key is None:
            raise IndexError_(f"point {pid} is not indexed")
        self.stats.deletes += 1
        cell = self._cells[key]
        del cell.points[pid]
        if cell.points:
            cell.dirty = True
        else:
            del self._cells[key]

    def ball(self, center: Sequence[float], radius: float) -> list[tuple[int, Coords]]:
        """All points within ``radius`` of ``center`` (radius <= eps)."""
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        self.stats.range_searches += 1
        if self._stencil is None:  # dormant: nothing has ever been inserted
            return []
        center_arr = np.asarray(center, dtype=np.float64)
        r_sq = radius * radius
        key = self.cell_of(center)
        results: list[tuple[int, Coords]] = []
        cells = self._cells
        for offset in self._stencil:
            other = tuple(k + o for k, o in zip(key, offset))
            cell = cells.get(other)
            if cell is None:
                continue
            cell.refresh()
            self.stats.nodes_accessed += 1  # one occupied cell visited
            self.stats.entries_scanned += len(cell.pids)
            diff = cell.matrix - center_arr
            mask = np.einsum("ij,ij->i", diff, diff) <= r_sq
            points = cell.points
            for idx in np.nonzero(mask)[0]:
                pid = cell.pids[idx]
                results.append((pid, points[pid]))
        return results

    def count_ball(self, center: Sequence[float], radius: float) -> int:
        """Number of points within ``radius`` of ``center`` (radius <= eps).

        Fully vectorized — no per-match Python work — and therefore much
        faster than ``len(ball(...))`` on dense data.
        """
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        self.stats.range_searches += 1
        if self._stencil is None:
            return 0
        center_arr = np.asarray(center, dtype=np.float64)
        r_sq = radius * radius
        key = self.cell_of(center)
        total = 0
        cells = self._cells
        for offset in self._stencil:
            other = tuple(k + o for k, o in zip(key, offset))
            cell = cells.get(other)
            if cell is None:
                continue
            cell.refresh()
            self.stats.nodes_accessed += 1
            self.stats.entries_scanned += len(cell.pids)
            diff = cell.matrix - center_arr
            total += int(
                np.count_nonzero(np.einsum("ij,ij->i", diff, diff) <= r_sq)
            )
        return total

    # ----------------------------------------------------------- batched layer

    def _batched_groups(self, centers):
        """Group centers by cell; yield (center indices, pairs, matrix).

        Centers sharing a cell query the identical 3^d neighbourhood, so its
        candidate matrices are concatenated once and reused for the whole
        group. ``pairs`` lists the candidates as (pid, coords) in exactly the
        order :meth:`ball` would visit them (stencil order, then cell row
        order), so masked row selection reproduces per-center results.
        """
        groups: dict[CellKey, list[int]] = {}
        for i, center in enumerate(centers):
            groups.setdefault(self.cell_of(center), []).append(i)
        cells = self._cells
        for key, idxs in groups.items():
            pairs: list[tuple[int, Coords]] = []
            mats = []
            for offset in self._stencil:
                cell = cells.get(tuple(k + o for k, o in zip(key, offset)))
                if cell is None:
                    continue
                cell.refresh()
                points = cell.points
                pairs.extend((pid, points[pid]) for pid in cell.pids)
                mats.append(cell.matrix)
                # Counted once per center sharing the group, so the batched
                # totals stay identical to per-center loops.
                self.stats.nodes_accessed += len(idxs)
                self.stats.entries_scanned += len(cell.pids) * len(idxs)
            block = None
            if mats:
                block = mats[0] if len(mats) == 1 else np.concatenate(mats)
            yield idxs, pairs, block

    def count_ball_many(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[int]:
        """Vectorized batch counting; results identical to looped calls.

        All centers falling in one cell share a single pairwise distance
        evaluation against the concatenated neighbourhood matrices, chunked
        so no intermediate block exceeds the pair budget.
        """
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        counts = [0] * len(centers)
        self.stats.range_searches += len(centers)
        if self._stencil is None or not centers:
            return counts
        arr = np.asarray(centers, dtype=np.float64)
        r_sq = radius * radius
        for idxs, _, block in self._batched_groups(centers):
            if block is None:
                continue
            step = max(1, _BATCH_PAIR_BUDGET // max(1, len(block)))
            for lo in range(0, len(idxs), step):
                chunk = idxs[lo : lo + step]
                diff = arr[chunk][:, None, :] - block[None, :, :]
                hits = np.count_nonzero(
                    np.einsum("ijk,ijk->ij", diff, diff) <= r_sq, axis=1
                )
                for row, i in enumerate(chunk):
                    counts[i] = int(hits[row])
        return counts

    def ball_many(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[list[tuple[int, Coords]]]:
        """Vectorized batch ball search; per-center results match :meth:`ball`."""
        if radius > self.eps + 1e-12:
            raise IndexError_(
                f"grid built for eps={self.eps} cannot serve radius={radius}"
            )
        out: list[list[tuple[int, Coords]]] = [[] for _ in centers]
        self.stats.range_searches += len(centers)
        if self._stencil is None or not centers:
            return out
        arr = np.asarray(centers, dtype=np.float64)
        r_sq = radius * radius
        for idxs, pairs, block in self._batched_groups(centers):
            if block is None:
                continue
            step = max(1, _BATCH_PAIR_BUDGET // max(1, len(block)))
            for lo in range(0, len(idxs), step):
                chunk = idxs[lo : lo + step]
                diff = arr[chunk][:, None, :] - block[None, :, :]
                within = np.einsum("ijk,ijk->ij", diff, diff) <= r_sq
                for row, i in enumerate(chunk):
                    out[i] = [pairs[j] for j in np.nonzero(within[row])[0]]
        return out

    def items(self) -> list[tuple[int, Coords]]:
        return [
            (pid, self._cells[key].points[pid])
            for pid, key in self._where.items()
        ]

    def check_invariants(self) -> None:
        """Consistency of the cell maps and matrix caches."""
        total = 0
        for key, cell in self._cells.items():
            assert cell.points, f"empty cell {key} not pruned"
            total += len(cell.points)
            for pid, coords in cell.points.items():
                assert self._where[pid] == key
                assert self.cell_of(coords) == key
            if not cell.dirty:
                assert cell.matrix is not None
                assert len(cell.pids) == len(cell.points)
        assert total == len(self._where)
