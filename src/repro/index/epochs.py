"""Generic epoch probing for backends without native visit tracking.

The paper's Algorithm 4 (epoch-based probing) was originally R-tree-only in
this reproduction: the tree stores a visit epoch per entry and per node and
prunes fully visited subtrees. Grid backends have no such machinery, which
forced ``epoch_probing=False`` whenever DISC ran on them.

:class:`EpochAdapter` removes that restriction. It wraps *any*
:class:`~repro.index.base.NeighborIndex` and supplies the epoch trio —
``new_tick`` / ``ball_unvisited`` / ``mark`` — by tracking visit epochs in a
side dictionary and filtering the wrapped backend's plain ball results. The
marking discipline is exactly the native one (see ``repro.index.rtree``): a
returned point is marked visited when ``should_mark`` is ``None`` or approves
its pid; unmarked points keep being returned by later probes of the same
tick, so MS-BFS searches converging on each other still see each other's
frontier cores and can merge.

What the adapter cannot replicate is the R-tree's *subtree* pruning: the
wrapped backend still enumerates the full ball and the filter discards
already-visited points afterwards. The semantics are identical; only the
constant factor differs. Every other call — including the batched layer, so
a wrapped :class:`~repro.index.vectorgrid.VectorGridIndex` keeps its
vectorized ``count_ball_many`` — is forwarded untouched.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.common.errors import IndexError_
from repro.index.base import Coords, NeighborIndex


class EpochAdapter(NeighborIndex):
    """Visited-tracking wrapper giving any backend epoch-probing semantics.

    Args:
        inner: the backend to wrap; exposed as :attr:`inner`.
    """

    supports_epochs = True

    def __init__(self, inner: NeighborIndex) -> None:
        self.inner = inner
        self._epochs: dict[int, int] = {pid: 0 for pid, _ in inner.items()}
        self._tick = 0
        self.radius_cap = inner.radius_cap

    @property
    def stats(self):
        return self.inner.stats

    # ------------------------------------------------------------ forwarding

    def __len__(self) -> int:
        return len(self.inner)

    def __contains__(self, pid: int) -> bool:
        return pid in self.inner

    def coords_of(self, pid: int) -> Coords:
        return self.inner.coords_of(pid)

    def insert(self, pid: int, coords: Sequence[float]) -> None:
        self.inner.insert(pid, coords)
        self._epochs[pid] = 0

    def delete(self, pid: int) -> None:
        self.inner.delete(pid)
        del self._epochs[pid]

    def insert_many(self, items: Iterable[tuple[int, Sequence[float]]]) -> None:
        items = list(items)
        self.inner.insert_many(items)
        epochs = self._epochs
        for pid, _ in items:
            epochs[pid] = 0

    def delete_many(self, pids: Iterable[int]) -> None:
        pids = list(pids)
        self.inner.delete_many(pids)
        epochs = self._epochs
        for pid in pids:
            del epochs[pid]

    def ball(self, center: Sequence[float], radius: float) -> list[tuple[int, Coords]]:
        return self.inner.ball(center, radius)

    def ball_many(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[list[tuple[int, Coords]]]:
        return self.inner.ball_many(centers, radius)

    def count_ball(self, center: Sequence[float], radius: float) -> int:
        return self.inner.count_ball(center, radius)

    def count_ball_many(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[int]:
        return self.inner.count_ball_many(centers, radius)

    def ball_many_pids(self, centers: Sequence[Sequence[float]], radius: float):
        return self.inner.ball_many_pids(centers, radius)

    def ball_pids(self, center: Sequence[float], radius: float):
        return self.inner.ball_pids(center, radius)

    def nearest(
        self, center: Sequence[float], k: int = 1
    ) -> list[tuple[int, Coords]]:
        return self.inner.nearest(center, k)

    def items(self) -> list[tuple[int, Coords]]:
        return self.inner.items()

    # ---------------------------------------------------------- epoch probing

    def new_tick(self) -> int:
        """Start a new visiting epoch; returns the tick to probe with."""
        self._tick += 1
        return self._tick

    def ball_unvisited(
        self,
        center: Sequence[float],
        radius: float,
        tick: int,
        should_mark=None,
    ) -> list[tuple[int, Coords]]:
        """Points in the ball not yet visited during epoch ``tick``.

        Marking semantics mirror the native implementations: a returned
        point is marked when ``should_mark`` is ``None`` or approves its
        pid; unmarked points keep being returned by later probes.
        """
        epochs = self._epochs
        results = []
        pruned = 0
        for pid, coords in self.inner.ball(center, radius):
            if epochs[pid] < tick:
                if should_mark is None or should_mark(pid):
                    epochs[pid] = tick
                results.append((pid, coords))
            else:
                pruned += 1
        self.inner.stats.epoch_prunes += pruned
        return results

    def ball_unvisited_pids(
        self,
        center: Sequence[float],
        radius: float,
        tick: int,
        should_mark=None,
    ) -> list[int]:
        """Ids-only :meth:`ball_unvisited`; identical marking and stats.

        Backed by the wrapped index's vectorized :meth:`ball_pids`, so no
        ``(pid, coords)`` tuples are built for callers (the columnar MS-BFS
        expansion) that resolve state by pid anyway.
        """
        epochs = self._epochs
        results: list[int] = []
        pruned = 0
        for pid in self.inner.ball_pids(center, radius).tolist():
            if epochs[pid] < tick:
                if should_mark is None or should_mark(pid):
                    epochs[pid] = tick
                results.append(pid)
            else:
                pruned += 1
        self.inner.stats.epoch_prunes += pruned
        return results

    def mark(self, pid: int, tick: int) -> None:
        """Mark one indexed point as visited during epoch ``tick``."""
        if pid not in self._epochs:
            raise IndexError_(f"point {pid} is not indexed")
        self._epochs[pid] = tick

    # ------------------------------------------------------------ diagnostics

    def check_invariants(self) -> None:
        self.inner.check_invariants()
        assert set(self._epochs) == {pid for pid, _ in self.inner.items()}, (
            "epoch bookkeeping out of sync with the wrapped index"
        )

    def __repr__(self) -> str:
        return f"EpochAdapter({self.inner!r})"


def with_epochs(index: NeighborIndex) -> NeighborIndex:
    """Return ``index`` itself if it probes epochs natively, else wrap it."""
    if index.supports_epochs:
        return index
    return EpochAdapter(index)
