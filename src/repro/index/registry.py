"""String-keyed registry of spatial-index backends.

Every layer that used to hard-code an index class — ``DISC``, the baselines,
the CLI, the substrate benches — now resolves backends through this module,
so adding a backend (a sharded grid, an ANN wrapper) is one
:func:`register_index` call away from being selectable everywhere.

A factory receives the keyword arguments ``eps``, ``dim`` and ``stats`` and
may ignore any of them: the R-tree and linear scan are parameter-free, while
the grid backends are tuned to one epsilon (and build their cell stencils
lazily when ``dim`` is ``None``, learning the dimensionality from the first
inserted point).

:func:`make_index` is the single resolution point. It accepts, for backward
compatibility with the old ``index_factory`` keyword, any of:

- a registry name (``"rtree"``, ``"linear"``, ``"grid"``, ``"vectorgrid"``);
- a ready :class:`~repro.index.base.NeighborIndex` instance (returned as-is);
- a zero-argument callable building an index (the legacy factory shape).
"""

from __future__ import annotations

import warnings
from collections.abc import Callable

from repro.common.errors import ConfigurationError
from repro.index.base import NeighborIndex
from repro.index.epochs import with_epochs
from repro.index.grid import GridIndex
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree
from repro.index.stats import IndexStats
from repro.index.vectorgrid import VectorGridIndex

#: A backend factory: ``factory(eps=..., dim=..., stats=...) -> NeighborIndex``.
IndexFactory = Callable[..., NeighborIndex]

DEFAULT_INDEX = "rtree"

_REGISTRY: dict[str, IndexFactory] = {}


def register_index(name: str, factory: IndexFactory, *, replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    Args:
        name: registry key, lowercase by convention.
        factory: callable accepting ``eps``, ``dim`` and ``stats`` keywords.
        replace: allow overwriting an existing entry.
    """
    if not replace and name in _REGISTRY:
        raise ConfigurationError(f"index backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_indexes() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_index(
    spec: str | NeighborIndex | Callable[[], object] | None,
    *,
    eps: float | None = None,
    dim: int | None = None,
    stats: IndexStats | None = None,
) -> NeighborIndex:
    """Resolve an index spec into a ready backend.

    Args:
        spec: a registry name, a pre-built index (returned unchanged), a
            zero-argument legacy factory, or ``None`` for the default
            (:data:`DEFAULT_INDEX`).
        eps: epsilon the index will serve; required by grid backends.
        dim: point dimensionality if already known; grid backends finish
            their stencils lazily when omitted.
        stats: optional shared counters for the new index.
    """
    if spec is None:
        spec = DEFAULT_INDEX
    if isinstance(spec, NeighborIndex):
        return spec
    if isinstance(spec, str):
        try:
            factory = _REGISTRY[spec]
        except KeyError:
            raise ConfigurationError(
                f"unknown index backend {spec!r}; "
                f"registered: {', '.join(available_indexes())}"
            ) from None
        return factory(eps=eps, dim=dim, stats=stats)
    if callable(spec):
        index = spec()
        if not isinstance(index, NeighborIndex):
            raise ConfigurationError(
                f"index factory returned {type(index).__name__}, "
                "which is not a NeighborIndex"
            )
        return index
    raise ConfigurationError(f"cannot build an index from {spec!r}")


def resolve_index(
    spec: str | NeighborIndex | Callable[[], object] | None,
    index_factory: Callable[[], object] | None = None,
    *,
    eps: float | None = None,
    dim: int | None = None,
    epoch_probing: bool = False,
    owner: str = "DISC",
) -> NeighborIndex:
    """Resolve a clusterer's index arguments into a ready backend.

    Shared by every clusterer taking the ``index=`` / ``index_factory=``
    pair: ``index`` wins when both are given, ``index_factory`` is honoured
    with a deprecation warning, and when ``epoch_probing`` is requested a
    backend without native epochs is wrapped in
    :class:`~repro.index.epochs.EpochAdapter` so probing works everywhere.
    """
    if index_factory is not None:
        warnings.warn(
            f"{owner}(index_factory=...) is deprecated; "
            "pass index=<name|instance|factory> instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if spec is None:
            spec = index_factory
    backend = make_index(spec, eps=eps, dim=dim)
    if epoch_probing:
        backend = with_epochs(backend)
    return backend


def _require_eps(eps: float | None, name: str) -> float:
    if eps is None:
        raise ConfigurationError(
            f"index backend {name!r} is tuned to one epsilon; pass eps"
        )
    return eps


register_index("rtree", lambda eps=None, dim=None, stats=None: RTree(stats=stats))
register_index(
    "linear", lambda eps=None, dim=None, stats=None: LinearScanIndex(stats=stats)
)
register_index(
    "grid",
    lambda eps=None, dim=None, stats=None: GridIndex(
        _require_eps(eps, "grid"), dim=dim, stats=stats
    ),
)
register_index(
    "vectorgrid",
    lambda eps=None, dim=None, stats=None: VectorGridIndex(
        _require_eps(eps, "vectorgrid"), dim=dim, stats=stats
    ),
)
