"""Spatial indexes used by the clustering algorithms.

All backends implement the :class:`~repro.index.base.NeighborIndex` contract
(point primitives, counting, k-nearest, and the batched query layer) and are
selectable by name through :mod:`repro.index.registry`. The R-tree
(:mod:`repro.index.rtree`) is the index the paper builds DISC on, including
the native epoch-based probing of Section IV-B; backends without native
epochs gain the same semantics through
:class:`~repro.index.epochs.EpochAdapter`. The linear-scan index is a
brute-force oracle with the same interface, used by tests. The grid indexes
serve epsilon-tuned workloads (the plain grid also backs the
rho-double-approximate DBSCAN baseline; the vectorized grid batches distance
evaluations through numpy).
"""

from repro.index.base import NeighborIndex
from repro.index.epochs import EpochAdapter, with_epochs
from repro.index.grid import GridIndex
from repro.index.linear import LinearScanIndex
from repro.index.registry import (
    DEFAULT_INDEX,
    available_indexes,
    make_index,
    register_index,
    resolve_index,
)
from repro.index.rtree import RTree
from repro.index.stats import IndexStats
from repro.index.vectorgrid import VectorGridIndex

__all__ = [
    "DEFAULT_INDEX",
    "EpochAdapter",
    "GridIndex",
    "IndexStats",
    "LinearScanIndex",
    "NeighborIndex",
    "RTree",
    "VectorGridIndex",
    "available_indexes",
    "make_index",
    "register_index",
    "resolve_index",
    "with_epochs",
]
