"""Spatial indexes used by the clustering algorithms.

The R-tree (:mod:`repro.index.rtree`) is the index the paper builds DISC on,
including the epoch-based probing of Section IV-B. The linear-scan index is a
brute-force oracle with the same interface, used by tests. The grid index
backs the rho-double-approximate DBSCAN baseline.
"""

from repro.index.grid import GridIndex
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree
from repro.index.stats import IndexStats
from repro.index.vectorgrid import VectorGridIndex

__all__ = [
    "GridIndex",
    "IndexStats",
    "LinearScanIndex",
    "RTree",
    "VectorGridIndex",
]
