"""The formal spatial-index contract every backend implements.

Historically the indexes in this package shared only a duck-typed interface;
:class:`NeighborIndex` makes the contract explicit. A backend provides the
point-at-a-time primitives (``insert``, ``delete``, ``ball``, ``coords_of``,
``items``) and inherits correct generic implementations of everything else:
counting (:meth:`count_ball`), k-nearest (:meth:`nearest`), and the batched
query layer (:meth:`insert_many`, :meth:`delete_many`, :meth:`ball_many`,
:meth:`count_ball_many`).

The batched layer is the hot-path contract: COLLECT and anchor repair issue
one batched call per stride instead of one Python-level call per point, so a
backend that can amortise work across queries (the numpy grid, the STR
bulk-loading R-tree) overrides the ``*_many`` methods while every other
backend keeps the loop fallback — results must be identical either way.

Capability flags let callers adapt instead of probing with ``hasattr``:

- :attr:`NeighborIndex.supports_epochs` — the backend natively implements
  the epoch probing trio (``new_tick`` / ``ball_unvisited`` / ``mark``,
  paper Algorithm 4). Backends without it are wrapped in
  :class:`repro.index.epochs.EpochAdapter`, which supplies the same
  semantics generically.
- :attr:`NeighborIndex.radius_cap` — ``None`` for general-radius backends;
  the tuned epsilon for grid backends whose stencil only covers balls up to
  that radius.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from typing import ClassVar

import numpy as np

from repro.common.errors import IndexError_
from repro.index.stats import IndexStats

Coords = tuple[float, ...]


class NeighborIndex(ABC):
    """Abstract base for all spatial-index backends.

    Subclasses must set :attr:`stats` (an :class:`IndexStats`) in their
    ``__init__`` and implement the abstract primitives; everything else has
    a correct generic fallback.
    """

    #: Whether the backend natively implements ``new_tick`` /
    #: ``ball_unvisited`` / ``mark`` (epoch probing, paper Algorithm 4).
    supports_epochs: ClassVar[bool] = False

    #: Largest query radius the backend can serve, or ``None`` if unbounded.
    radius_cap: float | None = None

    stats: IndexStats

    # ------------------------------------------------------------ primitives

    @abstractmethod
    def insert(self, pid: int, coords: Sequence[float]) -> None:
        """Index point ``pid`` at ``coords``; duplicate ids are rejected."""

    @abstractmethod
    def delete(self, pid: int) -> None:
        """Remove point ``pid``; unknown ids are rejected."""

    @abstractmethod
    def ball(self, center: Sequence[float], radius: float) -> list[tuple[int, Coords]]:
        """All indexed points within ``radius`` of ``center`` (inclusive)."""

    @abstractmethod
    def coords_of(self, pid: int) -> Coords:
        """Coordinates of an indexed point."""

    @abstractmethod
    def items(self) -> list[tuple[int, Coords]]:
        """All (pid, coords) pairs currently indexed."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __contains__(self, pid: int) -> bool: ...

    # ----------------------------------------------------- generic fallbacks

    def count_ball(self, center: Sequence[float], radius: float) -> int:
        """Number of points within ``radius`` of ``center``.

        Backends that can count without materialising matches (the numpy
        grid) override this; the fallback is ``len(ball(...))``.
        """
        return len(self.ball(center, radius))

    def nearest(
        self, center: Sequence[float], k: int = 1
    ) -> list[tuple[int, Coords]]:
        """The k nearest points to ``center``, nearest first.

        Generic full-scan fallback; tree backends override with best-first
        search. Returns fewer than k pairs when the index holds fewer points.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        self.stats.range_searches += 1
        center = tuple(center)
        pairs = self.items()
        self.stats.entries_scanned += len(pairs)
        dist = math.dist
        pairs.sort(key=lambda item: dist(item[1], center))
        return pairs[:k]

    def check_invariants(self) -> None:
        """Raise when a structural invariant is violated; no-op by default."""

    # ---------------------------------------------------------- batched layer

    def insert_many(self, items: Iterable[tuple[int, Sequence[float]]]) -> None:
        """Index a batch of (pid, coords) pairs.

        Equivalent to inserting one by one, in order; backends with bulk
        construction machinery (STR packing) override this.
        """
        insert = self.insert
        for pid, coords in items:
            insert(pid, coords)

    def delete_many(self, pids: Iterable[int]) -> None:
        """Remove a batch of points, in order."""
        delete = self.delete
        for pid in pids:
            delete(pid)

    def ball_many(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[list[tuple[int, Coords]]]:
        """One ball result list per center, in input order.

        Must return exactly what per-center :meth:`ball` calls would: the
        same points per ball, counted as one range search each in
        :attr:`stats`. Vectorized backends override this to share work
        across centers.
        """
        ball = self.ball
        return [ball(center, radius) for center in centers]

    def count_ball_many(
        self, centers: Sequence[Sequence[float]], radius: float
    ) -> list[int]:
        """One in-ball count per center, in input order.

        Results must be identical to per-center :meth:`count_ball` calls.
        """
        count_ball = self.count_ball
        return [count_ball(center, radius) for center in centers]

    def ball_pids(self, center: Sequence[float], radius: float) -> np.ndarray:
        """Pids within ``radius`` of ``center``, in :meth:`ball` order.

        The single-center ids-only query; same contract as
        :meth:`ball_many_pids` with one center, counted as one range search.
        """
        ball = self.ball(center, radius)
        return np.fromiter((pid for pid, _ in ball), dtype=np.int64, count=len(ball))

    def ball_many_pids(
        self, centers: Sequence[Sequence[float]], radius: float
    ):
        """One int64 pid array per center, in :meth:`ball` order.

        The ids-only variant of :meth:`ball_many` for callers that resolve
        coordinates themselves (the columnar store keeps them in its own
        arena): skipping the per-candidate ``(pid, coords)`` tuple building
        is the difference between the batched layer paying off and breaking
        even on small balls. Stats accounting is identical to
        :meth:`ball_many` — one range search per center.
        """
        return [
            np.fromiter(
                (pid for pid, _ in ball), dtype=np.int64, count=len(ball)
            )
            for ball in self.ball_many(centers, radius)
        ]
