"""Minimum bounding rectangle (MBR) arithmetic for the R-tree.

Rectangles are represented as a pair of coordinate tuples ``(lows, highs)``.
All functions are dimension-agnostic.
"""

from __future__ import annotations

from collections.abc import Sequence

Coords = tuple[float, ...]
Rect = tuple[Coords, Coords]


def point_rect(point: Sequence[float]) -> Rect:
    """Degenerate rectangle containing a single point."""
    coords = tuple(point)
    return coords, coords


def combine(a: Rect, b: Rect) -> Rect:
    """Smallest rectangle enclosing both ``a`` and ``b``."""
    lows = tuple(min(la, lb) for la, lb in zip(a[0], b[0]))
    highs = tuple(max(ha, hb) for ha, hb in zip(a[1], b[1]))
    return lows, highs


def extend(rect: Rect, point: Sequence[float]) -> Rect:
    """Smallest rectangle enclosing ``rect`` and ``point``."""
    lows = tuple(min(lo, x) for lo, x in zip(rect[0], point))
    highs = tuple(max(hi, x) for hi, x in zip(rect[1], point))
    return lows, highs


def area(rect: Rect) -> float:
    """Hyper-volume of the rectangle."""
    result = 1.0
    for lo, hi in zip(rect[0], rect[1]):
        result *= hi - lo
    return result


def enlargement(rect: Rect, other: Rect) -> float:
    """Extra area needed for ``rect`` to also cover ``other``."""
    return area(combine(rect, other)) - area(rect)


def mindist_sq(rect: Rect, point: Sequence[float]) -> float:
    """Squared distance from ``point`` to the nearest face of ``rect``.

    Zero when the point is inside. This is the standard R-tree pruning bound:
    a ball of radius r around ``point`` intersects ``rect`` iff
    ``mindist_sq <= r*r``.
    """
    total = 0.0
    for lo, hi, x in zip(rect[0], rect[1], point):
        if x < lo:
            diff = lo - x
        elif x > hi:
            diff = x - hi
        else:
            continue
        total += diff * diff
    return total


def contains_point(rect: Rect, point: Sequence[float]) -> bool:
    """True when ``point`` lies inside ``rect`` (boundaries inclusive)."""
    return all(lo <= x <= hi for lo, hi, x in zip(rect[0], rect[1], point))
