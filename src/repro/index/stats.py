"""Counters for index operations.

The paper's Figure 7 reports the *number of range searches* executed by each
method; every index in this library funnels its searches through an
:class:`IndexStats` so benches can read the counts without instrumenting the
algorithms themselves.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IndexStats:
    """Mutable operation counters for one spatial index."""

    range_searches: int = 0
    nodes_accessed: int = 0
    entries_scanned: int = 0
    inserts: int = 0
    deletes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.range_searches = 0
        self.nodes_accessed = 0
        self.entries_scanned = 0
        self.inserts = 0
        self.deletes = 0

    def snapshot(self) -> "IndexStats":
        """Return an independent copy of the current counters."""
        return IndexStats(
            range_searches=self.range_searches,
            nodes_accessed=self.nodes_accessed,
            entries_scanned=self.entries_scanned,
            inserts=self.inserts,
            deletes=self.deletes,
        )

    def __sub__(self, other: "IndexStats") -> "IndexStats":
        return IndexStats(
            range_searches=self.range_searches - other.range_searches,
            nodes_accessed=self.nodes_accessed - other.nodes_accessed,
            entries_scanned=self.entries_scanned - other.entries_scanned,
            inserts=self.inserts - other.inserts,
            deletes=self.deletes - other.deletes,
        )
