"""Counters for index operations.

The paper's Figure 7 reports the *number of range searches* executed by each
method; every index in this library funnels its searches through an
:class:`IndexStats` so benches can read the counts without instrumenting the
algorithms themselves. The finer-grained counters back the per-stride trace
layer (:mod:`repro.observability`): ``nodes_accessed`` and
``entries_scanned`` measure how much index structure a search touched, and
``epoch_prunes`` counts candidates suppressed by epoch-based probing
(Algorithm 4) — subtrees on the R-tree, individual points on the filtering
backends — so Figure 8's ablation can be read straight off the counters.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Counter names, in rendering order; shared by snapshots, traces and sinks.
FIELDS = (
    "range_searches",
    "nodes_accessed",
    "entries_scanned",
    "inserts",
    "deletes",
    "epoch_prunes",
)


@dataclass
class IndexStats:
    """Mutable operation counters for one spatial index."""

    range_searches: int = 0
    nodes_accessed: int = 0
    entries_scanned: int = 0
    inserts: int = 0
    deletes: int = 0
    epoch_prunes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.range_searches = 0
        self.nodes_accessed = 0
        self.entries_scanned = 0
        self.inserts = 0
        self.deletes = 0
        self.epoch_prunes = 0

    def snapshot(self) -> "IndexStats":
        """Return an independent copy of the current counters."""
        return IndexStats(
            range_searches=self.range_searches,
            nodes_accessed=self.nodes_accessed,
            entries_scanned=self.entries_scanned,
            inserts=self.inserts,
            deletes=self.deletes,
            epoch_prunes=self.epoch_prunes,
        )

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly form, in :data:`FIELDS` order."""
        return {name: getattr(self, name) for name in FIELDS}

    def __sub__(self, other: "IndexStats") -> "IndexStats":
        return IndexStats(
            range_searches=self.range_searches - other.range_searches,
            nodes_accessed=self.nodes_accessed - other.nodes_accessed,
            entries_scanned=self.entries_scanned - other.entries_scanned,
            inserts=self.inserts - other.inserts,
            deletes=self.deletes - other.deletes,
            epoch_prunes=self.epoch_prunes - other.epoch_prunes,
        )
