"""An in-memory R-tree with epoch-based probing (paper Section IV-B).

This is a classic Guttman R-tree (quadratic split, condense-tree deletion)
over points, extended with *epochs of a visiting history*: every leaf entry
and every node carries an epoch counter. A range search bound to the current
*tick* skips any entry or subtree whose epoch already equals the tick, and
marks what it returns — so repeated, overlapping range searches issued by one
MS-BFS instance never re-report a point, and fully-visited subtrees are pruned
wholesale without any reset pass between MS-BFS instances (Algorithm 4).

Two search flavours are exposed:

- :meth:`RTree.ball` — plain range search, returns everything in the ball.
- :meth:`RTree.ball_unvisited` — epoch-filtered search for a given tick.

Epoch semantics chosen for this reproduction (the paper leaves the precise
interaction between Algorithm 3 and Algorithm 4 implicit): an entry is marked
*when it is returned* by an epoch-filtered search. MS-BFS (Algorithm 3) marks
a vertex's surroundings only when the vertex is *expanded*, so two searches
approaching each other still see each other's frontier and can merge; see
``repro.core.msbfs`` for that side of the contract.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from heapq import heappop as _heappop, heappush as _heappush

from repro.common.errors import IndexError_
from repro.index import geometry as geo
from repro.index.base import NeighborIndex
from repro.index.stats import IndexStats

Coords = tuple[float, ...]

# A small fanout wins in pure Python: split cost is quadratic in the node
# size and dominates maintenance, while search cost is fanout-insensitive.
DEFAULT_MAX_ENTRIES = 8
DEFAULT_MIN_ENTRIES = 3


class _Entry:
    """A leaf-level entry: one indexed point plus its visit epoch."""

    __slots__ = ("pid", "coords", "epoch")

    def __init__(self, pid: int, coords: Coords) -> None:
        self.pid = pid
        self.coords = coords
        self.epoch = 0


class _Node:
    """An R-tree node; ``children`` holds entries (leaf) or nodes (internal)."""

    __slots__ = ("leaf", "children", "parent", "lows", "highs", "epoch")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.children: list = []
        self.parent: _Node | None = None
        self.lows: Coords = ()
        self.highs: Coords = ()
        self.epoch = 0

    @property
    def rect(self) -> geo.Rect:
        return self.lows, self.highs

    def child_rect(self, child) -> geo.Rect:
        if self.leaf:
            return child.coords, child.coords
        return child.lows, child.highs

    def recompute_rect(self) -> None:
        """Tighten this node's MBR to exactly cover its children."""
        if not self.children:
            self.lows, self.highs = (), ()
            return
        if self.leaf:
            first = self.children[0].coords
            lows = list(first)
            highs = list(first)
            for entry in self.children[1:]:
                for d, x in enumerate(entry.coords):
                    if x < lows[d]:
                        lows[d] = x
                    elif x > highs[d]:
                        highs[d] = x
        else:
            lows = list(self.children[0].lows)
            highs = list(self.children[0].highs)
            for child in self.children[1:]:
                for d, x in enumerate(child.lows):
                    if x < lows[d]:
                        lows[d] = x
                for d, x in enumerate(child.highs):
                    if x > highs[d]:
                        highs[d] = x
        self.lows = tuple(lows)
        self.highs = tuple(highs)


class RTree(NeighborIndex):
    """Dynamic R-tree over points with epoch-based probing.

    Args:
        max_entries: node fanout before a split.
        min_entries: fill below which a non-root node is condensed away.
        stats: optional shared :class:`IndexStats`; a private one is created
            when omitted.
    """

    supports_epochs = True

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int = DEFAULT_MIN_ENTRIES,
        stats: IndexStats | None = None,
    ) -> None:
        if not 2 <= min_entries <= max_entries // 2:
            raise IndexError_(
                f"need 2 <= min_entries <= max_entries/2, got "
                f"min={min_entries}, max={max_entries}"
            )
        self._max = max_entries
        self._min = min_entries
        self._root = _Node(leaf=True)
        self._where: dict[int, _Node] = {}
        self._tick = 0
        self.stats = stats if stats is not None else IndexStats()

    # ------------------------------------------------------------------ dunder

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, pid: int) -> bool:
        return pid in self._where

    def coords_of(self, pid: int) -> Coords:
        """Coordinates of an indexed point."""
        leaf = self._where[pid]
        for entry in leaf.children:
            if entry.pid == pid:
                return entry.coords
        raise IndexError_(f"corrupt index: {pid} missing from its leaf")

    # --------------------------------------------------------------- bulk load

    @classmethod
    def bulk_load(
        cls,
        items: Sequence[tuple[int, Sequence[float]]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int = DEFAULT_MIN_ENTRIES,
        stats: IndexStats | None = None,
    ) -> "RTree":
        """Build a packed R-tree with Sort-Tile-Recursive (STR) loading.

        Produces a tree with near-full nodes and little overlap — much faster
        to build and to query than one grown by repeated insertion. Useful
        for filling a whole window at once before streaming begins.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries, stats=stats)
        tree._bulk_build(items)
        return tree

    def _bulk_build(self, items: Sequence[tuple[int, Sequence[float]]]) -> None:
        """STR-pack ``items`` into this (empty) tree."""
        entries = []
        for pid, coords in items:
            if pid in self._where:
                raise IndexError_(f"duplicate pid {pid} in bulk load")
            entry = _Entry(pid, tuple(coords))
            entries.append(entry)
            self._where[pid] = None  # type: ignore[assignment] - fixed below
        if not entries:
            return
        dim = len(entries[0].coords)
        leaves = self._str_pack_entries(entries, dim)
        for leaf in leaves:
            for entry in leaf.children:
                self._where[entry.pid] = leaf
        level: list[_Node] = leaves
        while len(level) > 1:
            level = self._str_pack_nodes(level, dim)
        self._root = level[0]

    def insert_many(self, items) -> None:
        """Index a batch of points, STR-packing when the tree is empty.

        Filling an empty tree (a window prefill, a rebuild) reuses the
        Sort-Tile-Recursive machinery of :meth:`bulk_load` — near-full nodes,
        little overlap, far cheaper than one quadratic-split insertion per
        point. A non-empty tree falls back to ordered insertion. Query
        results are identical either way; only the tree shape differs.
        """
        items = list(items)
        if not self._where and len(items) > self._max:
            self._bulk_build(items)
            self.stats.inserts += len(items)
            return
        for pid, coords in items:
            self.insert(pid, coords)

    def _rebalance_tail(self, pages: list[list]) -> list[list]:
        """Fix up a trailing page smaller than ``min_entries``.

        Merges it into its predecessor when the result still fits in one
        node, otherwise resplits the pair evenly (both halves are legal:
        ``min_entries <= max_entries / 2`` is enforced at construction).
        """
        if len(pages) > 1 and len(pages[-1]) < self._min:
            spill = pages.pop()
            merged = pages.pop() + spill
            if len(merged) <= self._max:
                pages.append(merged)
            else:
                half = len(merged) // 2
                pages.extend([merged[:half], merged[half:]])
        return pages

    def _str_slices(self, items: list, dim: int, key_dim: int) -> list[list]:
        """Recursively tile ``items`` by successive coordinate dimensions."""
        capacity = self._max
        if key_dim >= dim - 1:
            items.sort(key=lambda it: it[0][key_dim])
            pages = [
                items[i : i + capacity] for i in range(0, len(items), capacity)
            ]
            return self._rebalance_tail(pages)
        import math as _math

        n_pages = _math.ceil(len(items) / capacity)
        per_slab = capacity * _math.ceil(
            n_pages ** ((dim - key_dim - 1) / (dim - key_dim))
        )
        items.sort(key=lambda it: it[0][key_dim])
        groups = []
        for i in range(0, len(items), per_slab):
            groups.extend(
                self._str_slices(items[i : i + per_slab], dim, key_dim + 1)
            )
        # A short trailing slab packs into a single underfull page that the
        # per-slab rebalance cannot see; fix it against the previous slab.
        return self._rebalance_tail(groups)

    def _str_pack_entries(self, entries: list[_Entry], dim: int) -> list[_Node]:
        keyed = [(entry.coords, entry) for entry in entries]
        leaves = []
        for group in self._str_slices(keyed, dim, 0):
            leaf = _Node(leaf=True)
            leaf.children = [entry for _, entry in group]
            leaf.recompute_rect()
            leaves.append(leaf)
        return leaves

    def _str_pack_nodes(self, nodes: list[_Node], dim: int) -> list[_Node]:
        keyed = [(node.lows, node) for node in nodes]
        parents = []
        for group in self._str_slices(keyed, dim, 0):
            parent = _Node(leaf=False)
            parent.children = [node for _, node in group]
            for child in parent.children:
                child.parent = parent
            parent.recompute_rect()
            parents.append(parent)
        return parents

    # ------------------------------------------------------------------ insert

    def insert(self, pid: int, coords: Sequence[float]) -> None:
        """Index point ``pid`` at ``coords``; duplicate ids are rejected."""
        if pid in self._where:
            raise IndexError_(f"point {pid} is already indexed")
        self.stats.inserts += 1
        entry = _Entry(pid, tuple(coords))
        leaf = self._choose_leaf(entry.coords)
        leaf.children.append(entry)
        self._where[pid] = leaf
        self._grow_upward(leaf, entry.coords)
        if len(leaf.children) > self._max:
            self._split(leaf)

    def _choose_leaf(self, coords: Coords) -> _Node:
        node = self._root
        while not node.leaf:
            best = None
            best_key = None
            for child in node.children:
                # Allocation-free enlargement of the child MBR by the point.
                old_area = 1.0
                new_area = 1.0
                for lo, hi, x in zip(child.lows, child.highs, coords):
                    old_area *= hi - lo
                    new_area *= (hi if hi > x else x) - (lo if lo < x else x)
                key = (new_area - old_area, old_area)
                if best_key is None or key < best_key:
                    best, best_key = child, key
            node = best
        return node

    def _grow_upward(self, node: _Node, coords: Coords) -> None:
        """Extend MBRs on the path to the root; reset epochs for the new entry."""
        current: _Node | None = node
        while current is not None:
            if current.lows:
                current.lows, current.highs = geo.extend(current.rect, coords)
            else:
                current.lows, current.highs = coords, coords
            current.epoch = 0
            current = current.parent

    # ------------------------------------------------------------------- split

    def _split(self, node: _Node) -> None:
        """Quadratic split; may propagate up to (and grow) the root."""
        while node is not None and len(node.children) > self._max:
            sibling = self._split_node(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                new_root.children = [node, sibling]
                node.parent = new_root
                sibling.parent = new_root
                new_root.recompute_rect()
                new_root.epoch = min(node.epoch, sibling.epoch)
                self._root = new_root
                return
            sibling.parent = parent
            parent.children.append(sibling)
            parent.recompute_rect()
            node = parent

    def _split_node(self, node: _Node) -> _Node:
        children = node.children
        seed_a, seed_b = self._pick_seeds(node)
        group_a = [children[seed_a]]
        group_b = [children[seed_b]]
        rect_a = node.child_rect(children[seed_a])
        rect_b = node.child_rect(children[seed_b])
        remaining = [
            c for i, c in enumerate(children) if i not in (seed_a, seed_b)
        ]
        while remaining:
            # Force-assign when one group must absorb all leftovers to reach
            # the minimum fill.
            if len(group_a) + len(remaining) <= self._min:
                group_a.extend(remaining)
                for c in remaining:
                    rect_a = geo.combine(rect_a, node.child_rect(c))
                break
            if len(group_b) + len(remaining) <= self._min:
                group_b.extend(remaining)
                for c in remaining:
                    rect_b = geo.combine(rect_b, node.child_rect(c))
                break
            child, pref_a = self._pick_next(node, remaining, rect_a, rect_b)
            remaining.remove(child)
            if pref_a:
                group_a.append(child)
                rect_a = geo.combine(rect_a, node.child_rect(child))
            else:
                group_b.append(child)
                rect_b = geo.combine(rect_b, node.child_rect(child))

        sibling = _Node(leaf=node.leaf)
        node.children = group_a
        sibling.children = group_b
        node.recompute_rect()
        sibling.recompute_rect()
        if node.leaf:
            node.epoch = min(e.epoch for e in group_a)
            sibling.epoch = min(e.epoch for e in group_b)
            for entry in group_b:
                self._where[entry.pid] = sibling
        else:
            node.epoch = min(c.epoch for c in group_a)
            sibling.epoch = min(c.epoch for c in group_b)
            for child in group_b:
                child.parent = sibling
        return sibling

    def _pick_seeds(self, node: _Node) -> tuple[int, int]:
        children = node.children
        worst = -1.0
        pair = (0, 1)
        for i in range(len(children)):
            rect_i = node.child_rect(children[i])
            for j in range(i + 1, len(children)):
                rect_j = node.child_rect(children[j])
                waste = (
                    geo.area(geo.combine(rect_i, rect_j))
                    - geo.area(rect_i)
                    - geo.area(rect_j)
                )
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    def _pick_next(self, node, remaining, rect_a, rect_b):
        best = None
        best_diff = -1.0
        best_pref_a = True
        for child in remaining:
            rect = node.child_rect(child)
            grow_a = geo.enlargement(rect_a, rect)
            grow_b = geo.enlargement(rect_b, rect)
            diff = abs(grow_a - grow_b)
            if diff > best_diff:
                best = child
                best_diff = diff
                best_pref_a = grow_a < grow_b or (
                    grow_a == grow_b and geo.area(rect_a) <= geo.area(rect_b)
                )
        return best, best_pref_a

    # ------------------------------------------------------------------ delete

    def delete(self, pid: int) -> None:
        """Remove point ``pid``; unknown ids are rejected."""
        leaf = self._where.pop(pid, None)
        if leaf is None:
            raise IndexError_(f"point {pid} is not indexed")
        self.stats.deletes += 1
        leaf.children = [e for e in leaf.children if e.pid != pid]
        self._condense(leaf)

    def _condense(self, node: _Node) -> None:
        orphans: list[_Entry] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            if len(current.children) < self._min:
                parent.children.remove(current)
                self._collect_entries(current, orphans)
            else:
                current.recompute_rect()
            current = parent
        current.recompute_rect()
        # Shrink a root that lost all but one child.
        while not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        if not self._root.leaf and not self._root.children:
            self._root = _Node(leaf=True)
        for entry in orphans:
            leaf = self._choose_leaf(entry.coords)
            leaf.children.append(entry)
            self._where[entry.pid] = leaf
            self._grow_upward(leaf, entry.coords)
            if len(leaf.children) > self._max:
                self._split(leaf)

    def _collect_entries(self, node: _Node, out: list[_Entry]) -> None:
        if node.leaf:
            out.extend(node.children)
        else:
            for child in node.children:
                self._collect_entries(child, out)

    # ----------------------------------------------------------------- queries

    def ball(self, center: Sequence[float], radius: float) -> list[tuple[int, Coords]]:
        """All indexed points within ``radius`` of ``center`` (inclusive).

        Counts as one range search in :attr:`stats`.
        """
        self.stats.range_searches += 1
        center = tuple(center)
        r_sq = radius * radius
        results: list[tuple[int, Coords]] = []
        stack = [self._root]
        stats = self.stats
        dist = math.dist
        while stack:
            node = stack.pop()
            stats.nodes_accessed += 1
            if node.leaf:
                stats.entries_scanned += len(node.children)
                for entry in node.children:
                    if dist(entry.coords, center) <= radius:
                        results.append((entry.pid, entry.coords))
            else:
                for child in node.children:
                    # geo.mindist_sq inlined: this test runs for every child
                    # of every visited node and dominates search time.
                    min_sq = 0.0
                    for lo, hi, x in zip(child.lows, child.highs, center):
                        if x < lo:
                            diff = lo - x
                            min_sq += diff * diff
                        elif x > hi:
                            diff = x - hi
                            min_sq += diff * diff
                    if min_sq <= r_sq:
                        stack.append(child)
        return results

    def nearest(
        self, center: Sequence[float], k: int = 1
    ) -> list[tuple[int, Coords]]:
        """The k nearest points to ``center``, nearest first.

        Classic best-first search over node MBRs using their mindist bound;
        returns fewer than k pairs when the index holds fewer points.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        self.stats.range_searches += 1
        center = tuple(center)
        heap: list[tuple[float, int, bool, object]] = []
        counter = 0
        heappush, heappop = _heappush, _heappop
        heappush(heap, (0.0, counter, False, self._root))
        results: list[tuple[int, Coords]] = []
        while heap and len(results) < k:
            dist_bound, _, is_entry, item = heappop(heap)
            if is_entry:
                results.append((item.pid, item.coords))
                continue
            self.stats.nodes_accessed += 1
            if item.leaf:
                self.stats.entries_scanned += len(item.children)
                for entry in item.children:
                    counter += 1
                    heappush(
                        heap,
                        (math.dist(entry.coords, center), counter, True, entry),
                    )
            else:
                for child in item.children:
                    counter += 1
                    heappush(
                        heap,
                        (
                            math.sqrt(geo.mindist_sq(child.rect, center)),
                            counter,
                            False,
                            child,
                        ),
                    )
        return results

    def new_tick(self) -> int:
        """Start a new visiting epoch; returns the tick to probe with."""
        self._tick += 1
        return self._tick

    def ball_unvisited(
        self,
        center: Sequence[float],
        radius: float,
        tick: int,
        should_mark=None,
    ) -> list[tuple[int, Coords]]:
        """Epoch-filtered range search (Algorithm 4).

        Returns points in the ball not yet visited during epoch ``tick``.
        A returned entry is marked visited when ``should_mark`` is ``None``
        or ``should_mark(pid)`` is true; entries left unmarked keep being
        returned by later probes of the same tick. MS-BFS uses this to mark
        non-core points at first sight but traversal vertices (cores) only at
        expansion — via :meth:`mark` — so two searches approaching each other
        can still observe each other's frontier and merge. Subtrees whose
        epoch already equals ``tick`` are pruned without descending.
        """
        self.stats.range_searches += 1
        center = tuple(center)
        results: list[tuple[int, Coords]] = []
        self._probe(self._root, center, radius, tick, should_mark, results)
        return results

    def mark(self, pid: int, tick: int) -> None:
        """Mark one indexed point as visited during epoch ``tick``.

        MS-BFS calls this when a core vertex is expanded; ancestor node
        epochs are raised lazily by later probes' backtracking, which is
        safe because a stale-low node epoch only costs pruning, never
        correctness.
        """
        leaf = self._where.get(pid)
        if leaf is None:
            raise IndexError_(f"point {pid} is not indexed")
        for entry in leaf.children:
            if entry.pid == pid:
                entry.epoch = tick
                return
        raise IndexError_(f"corrupt index: {pid} missing from its leaf")

    def _probe(
        self,
        node: _Node,
        center: Coords,
        radius: float,
        tick: int,
        should_mark,
        out: list[tuple[int, Coords]],
    ) -> None:
        self.stats.nodes_accessed += 1
        if node.leaf:
            min_epoch = tick
            self.stats.entries_scanned += len(node.children)
            dist = math.dist
            for entry in node.children:
                if entry.epoch >= tick:
                    # Already visited this epoch: skipped before the distance
                    # test even runs.
                    self.stats.epoch_prunes += 1
                elif dist(entry.coords, center) <= radius:
                    if should_mark is None or should_mark(entry.pid):
                        entry.epoch = tick
                    out.append((entry.pid, entry.coords))
                if entry.epoch < min_epoch:
                    min_epoch = entry.epoch
            node.epoch = min_epoch
            return
        min_epoch = tick
        r_sq = radius * radius
        for child in node.children:
            if child.epoch >= tick:
                # Fully visited subtree: pruned without descending — the
                # payoff Algorithm 4 exists for.
                self.stats.epoch_prunes += 1
            else:
                # geo.mindist_sq inlined (hot path, see ball()).
                min_sq = 0.0
                for lo, hi, x in zip(child.lows, child.highs, center):
                    if x < lo:
                        diff = lo - x
                        min_sq += diff * diff
                    elif x > hi:
                        diff = x - hi
                        min_sq += diff * diff
                if min_sq <= r_sq:
                    self._probe(child, center, radius, tick, should_mark, out)
            if child.epoch < min_epoch:
                min_epoch = child.epoch
        node.epoch = min_epoch

    # ------------------------------------------------------------- diagnostics

    def height(self) -> int:
        """Tree height (1 for a lone leaf root)."""
        depth = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            depth += 1
        return depth

    def items(self) -> list[tuple[int, Coords]]:
        """All (pid, coords) pairs currently indexed."""
        out: list[_Entry] = []
        self._collect_entries(self._root, out)
        return [(e.pid, e.coords) for e in out]

    def check_invariants(self) -> None:
        """Raise AssertionError when a structural invariant is violated.

        Used by the test suite after randomized insert/delete workloads.
        """
        seen: set[int] = set()
        self._check_node(self._root, is_root=True, seen=seen)
        assert seen == set(self._where), "pid bookkeeping out of sync"
        for pid, leaf in self._where.items():
            assert any(e.pid == pid for e in leaf.children), (
                f"where-map points {pid} at a leaf that lacks it"
            )

    def _check_node(self, node: _Node, is_root: bool, seen: set[int]) -> None:
        if not is_root:
            assert len(node.children) >= self._min, "underfull node"
        assert len(node.children) <= self._max, "overfull node"
        if node.children:
            node_rect = node.rect
            for child in node.children:
                child_rect = node.child_rect(child)
                combined = geo.combine(node_rect, child_rect)
                assert combined == node_rect, "child escapes parent MBR"
        if node.leaf:
            for entry in node.children:
                assert entry.pid not in seen, "duplicate pid in tree"
                seen.add(entry.pid)
        else:
            for child in node.children:
                assert child.parent is node, "broken parent pointer"
                self._check_node(child, is_root=False, seen=seen)

