"""Union-find over cluster ids.

Cluster merges in DISC (and in IncDBSCAN) are implemented as a single
``union`` of two cluster ids instead of relabelling every member point.
Reads resolve through ``find`` with path compression, so a border point's
anchor stays valid across any number of merges.
"""

from __future__ import annotations


class DisjointSet:
    """A disjoint-set forest over integer ids with union by size.

    Ids are created on demand by :meth:`make`; :meth:`find` on an unknown id
    registers it as its own singleton, which keeps call sites simple.

    Beyond the classic operations, the forest supports *retirement*
    (:meth:`retire`): dropping an entire set — root plus every id ever merged
    into it — once nothing references its label any more. Without it a
    long-running stream leaks one forest entry per merged-away cluster id,
    because :meth:`discard` can only reclaim singleton roots. A member list
    is kept per root to make retirement O(set size) instead of a full scan.
    """

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}
        self._members: dict[int, list[int]] = {}
        self._next_id = 0

    def make(self) -> int:
        """Create and return a brand-new singleton id."""
        new_id = self._next_id
        self._next_id += 1
        self._parent[new_id] = new_id
        self._size[new_id] = 1
        self._members[new_id] = [new_id]
        return new_id

    def find(self, item: int) -> int:
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            self._members[item] = [item]
            if item >= self._next_id:
                self._next_id = item + 1
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._members[ra].extend(self._members.pop(rb))
        return ra

    def connected(self, a: int, b: int) -> bool:
        """Return True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def discard(self, item: int) -> None:
        """Forget a *root* id that no longer labels any point.

        Only safe for ids that are their own representative and whose set has
        stayed a singleton; sets that absorbed other ids must go through
        :meth:`retire` instead.
        """
        if self._parent.get(item) == item and self._size.get(item) == 1:
            del self._parent[item]
            del self._size[item]
            del self._members[item]

    def retire(self, item: int) -> None:
        """Drop ``item``'s entire set from the forest.

        The caller asserts that no live reference resolves through any id of
        the set — e.g. a cluster id whose last member cores dissipated.
        Unknown ids are ignored (the id may have been retired already, or
        belong to a set retired through another member).
        """
        if item not in self._parent:
            return
        root = self.find(item)
        for member in self._members.pop(root):
            del self._parent[member]
            del self._size[member]

    def _rebuild_members(self) -> None:
        """Recompute the per-root member lists from the parent table.

        Needed after a restore that reconstructs ``_parent`` directly (the
        checkpoint format stores only parent pointers).
        """
        self._members = {}
        for item in list(self._parent):
            self._members.setdefault(self.find(item), []).append(item)

    def check_invariants(self) -> None:
        """Internal consistency of the parent/size/member tables."""
        roots = {item for item, parent in self._parent.items() if item == parent}
        assert set(self._members) == roots, "member lists out of sync with roots"
        seen: set[int] = set()
        for root, members in self._members.items():
            for member in members:
                assert self.find(member) == root
                assert member not in seen
                seen.add(member)
        assert seen == set(self._parent), "member lists do not cover the forest"

    def __len__(self) -> int:
        return len(self._parent)
