"""Union-find over cluster ids.

Cluster merges in DISC (and in IncDBSCAN) are implemented as a single
``union`` of two cluster ids instead of relabelling every member point.
Reads resolve through ``find`` with path compression, so a border point's
anchor stays valid across any number of merges.
"""

from __future__ import annotations


class DisjointSet:
    """A disjoint-set forest over integer ids with union by size.

    Ids are created on demand by :meth:`make`; :meth:`find` on an unknown id
    registers it as its own singleton, which keeps call sites simple.
    """

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}
        self._next_id = 0

    def make(self) -> int:
        """Create and return a brand-new singleton id."""
        new_id = self._next_id
        self._next_id += 1
        self._parent[new_id] = new_id
        self._size[new_id] = 1
        return new_id

    def find(self, item: int) -> int:
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            if item >= self._next_id:
                self._next_id = item + 1
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: int, b: int) -> bool:
        """Return True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def discard(self, item: int) -> None:
        """Forget a *root* id that no longer labels any point.

        Only safe for ids that are their own representative and whose set has
        become empty; used to keep the forest from growing without bound
        across many window slides.
        """
        if self._parent.get(item) == item and self._size.get(item) == 1:
            del self._parent[item]
            del self._size[item]

    def __len__(self) -> int:
        return len(self._parent)
