"""The common clustering snapshot type reported by every method.

A :class:`Clustering` is a point-in-time view of the window: each point's
category (core / border / noise) and, for non-noise points, its cluster id.
All clusterers in this library — exact and approximate — can produce one, so
metrics and tests compare methods through this single type.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from collections.abc import Iterable, Mapping


class Category(enum.Enum):
    """The DBSCAN point categories, plus the transient bookkeeping states."""

    CORE = "core"
    BORDER = "border"
    NOISE = "noise"
    UNCLASSIFIED = "unclassified"
    DELETED = "deleted"


class Clustering:
    """An immutable snapshot of a clustering result.

    Args:
        labels: mapping of point id -> cluster id; noise points are absent
            (or mapped to ``NOISE_ID``).
        categories: mapping of point id -> :class:`Category`; must cover every
            point currently in the window.
    """

    NOISE_ID = -1

    def __init__(
        self,
        labels: Mapping[int, int],
        categories: Mapping[int, Category],
    ) -> None:
        self._labels = {
            pid: cid for pid, cid in labels.items() if cid != self.NOISE_ID
        }
        self._categories = dict(categories)

    @property
    def labels(self) -> Mapping[int, int]:
        """Point id -> cluster id for every non-noise point."""
        return self._labels

    @property
    def categories(self) -> Mapping[int, Category]:
        """Point id -> category for every point in the window."""
        return self._categories

    def label_of(self, pid: int) -> int:
        """Cluster id of ``pid``, or ``NOISE_ID`` when it is noise."""
        return self._labels.get(pid, self.NOISE_ID)

    def category_of(self, pid: int) -> Category:
        """Category of ``pid``; unknown ids are reported as noise."""
        return self._categories.get(pid, Category.NOISE)

    def clusters(self) -> dict[int, set[int]]:
        """Cluster id -> member point ids."""
        grouped: dict[int, set[int]] = defaultdict(set)
        for pid, cid in self._labels.items():
            grouped[cid].add(pid)
        return dict(grouped)

    def core_clusters(self) -> dict[int, frozenset[int]]:
        """Cluster id -> the *core* member points only.

        Border assignment is order-dependent in DBSCAN, so exactness
        comparisons are made on the core partition (see DESIGN.md §3.4).
        """
        grouped: dict[int, set[int]] = defaultdict(set)
        for pid, cid in self._labels.items():
            if self._categories.get(pid) is Category.CORE:
                grouped[cid].add(pid)
        return {cid: frozenset(members) for cid, members in grouped.items() if members}

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters containing at least one core."""
        return len(self.core_clusters())

    @property
    def num_points(self) -> int:
        return len(self._categories)

    def count(self, category: Category) -> int:
        """Number of points in the given category."""
        return sum(1 for cat in self._categories.values() if cat is category)

    def label_array(self, pids: Iterable[int]) -> list[int]:
        """Labels in the order of ``pids`` (noise as ``NOISE_ID``), for ARI."""
        return [self.label_of(pid) for pid in pids]

    def __repr__(self) -> str:
        return (
            f"Clustering(points={self.num_points}, clusters={self.num_clusters}, "
            f"cores={self.count(Category.CORE)}, noise={self.count(Category.NOISE)})"
        )
