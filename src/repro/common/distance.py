"""Distance helpers.

All clusterers and indexes in this library agree on plain Euclidean distance.
Hot paths work with *squared* distances to avoid square roots; the epsilon
threshold is squared once up front by callers.

:func:`dists_to_many` is the one batch kernel every vectorized index backend
shares — a single implementation keeps the floating-point evaluation order
(and therefore borderline eps decisions) identical across backends.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

Coords = tuple[float, ...]


def dists_to_many(centers, points) -> np.ndarray:
    """Squared Euclidean distances from center(s) to a batch of points.

    Args:
        centers: one coordinate vector ``(d,)`` or a batch ``(m, d)``.
        points: candidate matrix ``(n, d)``.

    Returns:
        ``(n,)`` squared distances for a single center, ``(m, n)`` for a
        batch. Squared — compare against ``eps * eps``; callers that need
        true distances take one ``sqrt`` at the end.
    """
    pts = np.asarray(points, dtype=np.float64)
    ctr = np.asarray(centers, dtype=np.float64)
    if ctr.ndim == 1:
        diff = pts - ctr
        return np.einsum("ij,ij->i", diff, diff)
    diff = ctr[:, None, :] - pts[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


def squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Return the squared Euclidean distance between two coordinate tuples."""
    total = 0.0
    for xa, xb in zip(a, b):
        diff = xa - xb
        total += diff * diff
    return total


def within_eps(a: Sequence[float], b: Sequence[float], eps: float) -> bool:
    """Return True when ``a`` and ``b`` lie within ``eps`` of each other.

    The comparison is inclusive (``dist <= eps``), matching DBSCAN's
    definition of the epsilon-neighbourhood.
    """
    return squared_distance(a, b) <= eps * eps
