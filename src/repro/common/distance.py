"""Distance helpers.

All clusterers and indexes in this library agree on plain Euclidean distance.
Hot paths work with *squared* distances to avoid square roots; the epsilon
threshold is squared once up front by callers.
"""

from __future__ import annotations

from collections.abc import Sequence

Coords = tuple[float, ...]


def squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Return the squared Euclidean distance between two coordinate tuples."""
    total = 0.0
    for xa, xb in zip(a, b):
        diff = xa - xb
        total += diff * diff
    return total


def within_eps(a: Sequence[float], b: Sequence[float], eps: float) -> bool:
    """Return True when ``a`` and ``b`` lie within ``eps`` of each other.

    The comparison is inclusive (``dist <= eps``), matching DBSCAN's
    definition of the epsilon-neighbourhood.
    """
    return squared_distance(a, b) <= eps * eps
