"""Stream point representation.

Stream elements are lightweight named tuples: an integer id, a coordinate
tuple, and a timestamp. The timestamp drives time-based windows and is simply
the arrival index for count-based streams.
"""

from __future__ import annotations

from typing import NamedTuple


class StreamPoint(NamedTuple):
    """One element of a data stream."""

    pid: int
    coords: tuple[float, ...]
    time: float = 0.0


def make_points(
    coords_list: list[tuple[float, ...]],
    start_id: int = 0,
    start_time: float = 0.0,
) -> list[StreamPoint]:
    """Wrap raw coordinate tuples as consecutive :class:`StreamPoint`s."""
    return [
        StreamPoint(start_id + i, tuple(coords), start_time + i)
        for i, coords in enumerate(coords_list)
    ]
