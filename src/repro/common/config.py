"""Configuration dataclasses shared by all clusterers and drivers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ClusteringParams:
    """The two DBSCAN-family thresholds, plus the chosen index substrate.

    Attributes:
        eps: distance threshold (the paper's epsilon). A point q is an
            epsilon-neighbour of p when ``dist(p, q) <= eps``.
        tau: density threshold (the paper's tau, a.k.a. MinPts). A point is a
            core when its epsilon-neighbourhood, *including itself*, holds at
            least ``tau`` points — matching COLLECT, which initialises
            ``n_eps(p) = 1`` on insertion.
        index: registry name of the spatial-index backend the clusterer
            should run on (see ``repro.index.registry``), or ``None`` to let
            the clusterer use its default (the R-tree) or an explicitly
            injected index instance. Recorded here so a configuration round-
            trips the substrate choice alongside the thresholds.
    """

    eps: float
    tau: int
    index: str | None = None

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {self.eps}")
        if self.tau < 1:
            raise ConfigurationError(f"tau must be >= 1, got {self.tau}")
        if self.index is not None and (
            not isinstance(self.index, str) or not self.index
        ):
            raise ConfigurationError(
                f"index must be a backend name or None, got {self.index!r}"
            )

    @property
    def eps_sq(self) -> float:
        """Squared distance threshold, precomputed for hot paths."""
        return self.eps * self.eps


@dataclass(frozen=True)
class WindowSpec:
    """A sliding-window specification.

    Under the count-based model ``window`` and ``stride`` are numbers of data
    points; under the time-based model they are durations in the stream's
    timestamp unit. The clustering algorithms are agnostic to which model
    produced the per-stride deltas (Section II-B of the paper).
    """

    window: int
    stride: int

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")
        if self.stride > self.window:
            raise ConfigurationError(
                f"stride ({self.stride}) must not exceed window ({self.window})"
            )

    @property
    def strides_per_window(self) -> int:
        """Number of whole strides fitting in one window (EXTRA-N's m)."""
        return self.window // self.stride

    @property
    def stride_ratio(self) -> float:
        """Stride as a fraction of the window (the x-axis of Figs. 4 and 7b)."""
        return self.stride / self.window
