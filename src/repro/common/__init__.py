"""Shared primitives used across the DISC reproduction.

This package holds the small, dependency-free building blocks every other
subpackage relies on: point/record types, distance helpers, the disjoint-set
used for cluster-id algebra, configuration dataclasses, and the common
``Clustering`` snapshot type all clusterers report.
"""

from repro.common.config import ClusteringParams, WindowSpec
from repro.common.disjointset import DisjointSet
from repro.common.distance import squared_distance, within_eps
from repro.common.errors import ConfigurationError, ReproError, StreamOrderError
from repro.common.snapshot import Category, Clustering

__all__ = [
    "Category",
    "Clustering",
    "ClusteringParams",
    "ConfigurationError",
    "DisjointSet",
    "ReproError",
    "StreamOrderError",
    "WindowSpec",
    "squared_distance",
    "within_eps",
]
