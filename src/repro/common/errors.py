"""Exception hierarchy for the DISC reproduction library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when parameters are invalid (non-positive eps, tau < 1, ...)."""


class StreamOrderError(ReproError):
    """Raised when stream updates violate the sliding-window contract.

    Examples: deleting a point that is not in the window, inserting a point
    id that is already present, or time-based strides arriving out of order.
    """


class IndexError_(ReproError):
    """Raised on invalid spatial-index operations (duplicate insert, ...).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """
