"""JSON-friendly serialization of clustering snapshots.

Downstream consumers (dashboards, alerting pipelines) usually want labels as
plain data; these helpers convert a :class:`Clustering` to and from
JSON-compatible dictionaries with a round-trip guarantee.
"""

from __future__ import annotations

import json

from repro.common.errors import ReproError
from repro.common.snapshot import Category, Clustering


class SerializationError(ReproError):
    """Raised when a payload cannot be decoded into a Clustering."""


def clustering_to_dict(clustering: Clustering) -> dict:
    """A JSON-compatible representation of a snapshot."""
    return {
        "version": 1,
        "labels": {str(pid): cid for pid, cid in clustering.labels.items()},
        "categories": {
            str(pid): category.value
            for pid, category in clustering.categories.items()
        },
    }


def clustering_from_dict(payload: dict) -> Clustering:
    """Inverse of :func:`clustering_to_dict`."""
    try:
        if payload.get("version") != 1:
            raise SerializationError(
                f"unsupported snapshot version: {payload.get('version')!r}"
            )
        labels = {int(pid): int(cid) for pid, cid in payload["labels"].items()}
        categories = {
            int(pid): Category(value)
            for pid, value in payload["categories"].items()
        }
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SerializationError(f"malformed snapshot payload: {exc}") from exc
    return Clustering(labels, categories)


def dumps(clustering: Clustering) -> str:
    """Serialize a snapshot to a JSON string."""
    return json.dumps(clustering_to_dict(clustering), sort_keys=True)


def loads(text: str) -> Clustering:
    """Deserialize a snapshot from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return clustering_from_dict(payload)
