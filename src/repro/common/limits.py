"""Shared size ceilings for every framed byte stream in the repo.

Two layers frame records with a 4-byte length prefix — the serve protocol
(JSON lines over TCP) and the segmented logs (WAL + evolution journal).
Each used to carry its own magic number; they live here so the invariant
between them is stated once and testable:

- :data:`MAX_FRAME_BYTES` is the *transport* ceiling: no single serve
  protocol frame (request, response, or server push) may exceed it.
- :data:`MAX_RECORD_BYTES` is the *storage* ceiling: a segmented-log
  length prefix above it is treated as corruption by the recovery scan,
  never as a record.
- :data:`MAX_JOURNAL_RECORD_BYTES` caps evolution-journal records below
  the transport ceiling (minus push-envelope headroom), because every
  journal record must be deliverable verbatim inside one ``SUBSCRIBE``
  push frame.
"""

from __future__ import annotations

#: Hard per-frame ceiling of the serve protocol (requests and pushes).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Hard per-record ceiling of segmented logs — a length prefix above this
#: is corruption, not a record.
MAX_RECORD_BYTES = 16 * 1024 * 1024

#: Headroom reserved for the ``{"push": "event", ...}`` envelope wrapped
#: around a journal record when it is streamed to a subscriber.
PUSH_ENVELOPE_BYTES = 1024

#: Per-record ceiling of the evolution journal: strictly below the
#: transport ceiling so any journaled record fits in one push frame.
MAX_JOURNAL_RECORD_BYTES = MAX_FRAME_BYTES - PUSH_ENVELOPE_BYTES
