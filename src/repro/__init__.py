"""DISC: density-based incremental clustering by striding over streaming data.

A from-scratch reproduction of Kim, Koo, Kim, Moon (ICDE 2021). The headline
export is :class:`~repro.core.disc.DISC`, an exact incremental DBSCAN-family
clusterer for sliding windows; every comparison method of the paper's
evaluation ships alongside it (see :mod:`repro.baselines`), together with the
window machinery, spatial indexes, dataset simulators, metrics, and the
benchmark harness that regenerates each figure and table.

Quickstart:
    >>> from repro import DISC, WindowSpec, drive
    >>> from repro.datasets import maze_stream
    >>> points, truth = maze_stream(3000)
    >>> result = drive(DISC(eps=0.8, tau=4), points, WindowSpec(1000, 100))
    >>> len(result.measurements)
    30
"""

from repro._version import __version__
from repro.api import cluster_static, cluster_stream
from repro.baselines import (
    DBStream,
    EDMStream,
    ExtraN,
    IncrementalDBSCAN,
    RhoDoubleApproxDBSCAN,
    SlidingDBSCAN,
)
from repro.common import Category, Clustering, ClusteringParams, WindowSpec
from repro.common.points import StreamPoint
from repro.core import (
    DISC,
    ClusterTracker,
    EvolutionEvent,
    EvolutionKind,
    Lineage,
    StrideSummary,
)
from repro.index import (
    EpochAdapter,
    GridIndex,
    LinearScanIndex,
    NeighborIndex,
    RTree,
    VectorGridIndex,
    available_indexes,
    make_index,
    register_index,
)
from repro.metrics import (
    adjusted_rand_index,
    assert_equivalent,
    equivalent,
    suggest_eps,
    suggest_tau,
)
from repro.monitoring import AnomalyMonitor, AnomalyReport, runtime_report
from repro.runtime import (
    CheckpointStore,
    DeadLetterSink,
    FaultPolicy,
    RuntimeStats,
    Supervisor,
)
from repro.window import SlidingWindow, drive, drive_supervised, replay

__all__ = [
    "__version__",
    "AnomalyMonitor",
    "AnomalyReport",
    "CheckpointStore",
    "DISC",
    "DeadLetterSink",
    "FaultPolicy",
    "RuntimeStats",
    "Supervisor",
    "Category",
    "ClusterTracker",
    "Clustering",
    "ClusteringParams",
    "DBStream",
    "EDMStream",
    "EpochAdapter",
    "EvolutionEvent",
    "EvolutionKind",
    "ExtraN",
    "GridIndex",
    "IncrementalDBSCAN",
    "Lineage",
    "LinearScanIndex",
    "NeighborIndex",
    "RTree",
    "VectorGridIndex",
    "RhoDoubleApproxDBSCAN",
    "SlidingDBSCAN",
    "SlidingWindow",
    "StreamPoint",
    "StrideSummary",
    "WindowSpec",
    "adjusted_rand_index",
    "assert_equivalent",
    "available_indexes",
    "cluster_static",
    "cluster_stream",
    "make_index",
    "register_index",
    "drive",
    "drive_supervised",
    "equivalent",
    "replay",
    "runtime_report",
    "suggest_eps",
    "suggest_tau",
]
