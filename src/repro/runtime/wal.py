"""Segmented, CRC-framed append-only logs; the ingest write-ahead log.

Two durable logs share one storage engine. :class:`SegmentedLog` is the
engine: segmented, length-prefixed, CRC32-framed files with contiguous
sequence numbers, fsync-policy commits, clean-prefix torn-tail recovery,
and checkpoint-keyed compaction. :class:`WriteAheadLog` specialises it for
*raw admitted stream items* — :class:`~repro.common.points.StreamPoint`
and :class:`~repro.datasets.io.MalformedRecord` alike — journaled before
they are fed to the clustering pipeline;
:class:`repro.query.journal.EvolutionJournal` specialises it for the CDC
stream of per-stride evolution records.

Together with the checkpoint store the WAL closes the serving layer's
durability hole: a checkpoint covers the stream up to its
``stream_offset``, and the WAL covers the acknowledged tail past it, so a
``kill -9`` at any instant loses nothing that was acknowledged.

Record framing (binary, append-only)::

    +----------------+----------------+----------------------+
    | length (4B LE) | crc32 (4B LE)  | body (length bytes)  |
    +----------------+----------------+----------------------+

The body carries the record's **sequence number** and payload (the codec
is the subclass's). Sequence numbers are assigned by the log, start at 0
for a fresh stream, and are strictly contiguous — which is what lets a
recovery scan detect any corruption (torn tail, truncation inside a
record, bit rot) and truncate back to the longest clean prefix.

Durability is governed by the fsync policy:

- ``always`` — fsync at every :meth:`SegmentedLog.commit` (the ACK
  boundary): an acknowledged record is durable before the
  acknowledgement leaves;
- ``every_n`` — fsync once per N appended records;
- ``interval`` — fsync when at least ``fsync_interval_s`` elapsed since
  the previous one.

Segments rotate at ``segment_bytes``; each file is named by the sequence
number of its first record (``<prefix>-<seq:012d>.seg``), so
:meth:`SegmentedLog.compact` can garbage-collect every segment whose whole
range is covered by a durable checkpoint without reading it.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ReproError
from repro.common.limits import MAX_RECORD_BYTES  # noqa: F401  (re-export)
from repro.common.points import StreamPoint
from repro.datasets.io import MalformedRecord

#: fsync policies (see module docstring).
FSYNC_POLICIES = ("always", "every_n", "interval")

#: Counter names surfaced through the trace schema and Prometheus exporter.
WAL_FIELDS = (
    "appends",
    "fsyncs",
    "bytes",
    "replayed",
    "truncated_tail",
    "tenant_restarts",
)

_HEADER = struct.Struct("<II")  # (body length, crc32 of body)


class WalError(ReproError):
    """A segmented log could not append, scan, or replay."""


@dataclass
class WalStats:
    """Cumulative counters of one log (survives tenant restarts).

    Attributes:
        appends: records appended (not counting replays).
        fsyncs: physical ``fsync`` calls issued.
        bytes: framed bytes appended.
        replayed: records fed back into a pipeline by :meth:`replay`.
        truncated_tail: recovery scans that had to cut a torn/corrupt tail.
        tenant_restarts: supervised session restarts recovered through this
            log (incremented by the serving layer's supervisor).
    """

    appends: int = 0
    fsyncs: int = 0
    bytes: int = 0
    replayed: int = 0
    truncated_tail: int = 0
    tenant_restarts: int = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in WAL_FIELDS}


# ------------------------------------------------------------------ encoding


def encode_item(seq: int, item: StreamPoint | MalformedRecord) -> bytes:
    """One record body: ``{"s": seq, "p": [...]}`` or ``{"s": seq, "m": [...]}``."""
    if isinstance(item, StreamPoint):
        payload = {"s": seq, "p": [item.pid, list(item.coords), item.time]}
    elif isinstance(item, MalformedRecord):
        payload = {"s": seq, "m": [item.line_no, item.raw, item.error]}
    else:
        raise WalError(f"cannot journal item of type {type(item).__name__}")
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_item(body: bytes) -> tuple[int, StreamPoint | MalformedRecord]:
    """Inverse of :func:`encode_item`; raises :class:`WalError` on garbage."""
    try:
        payload = json.loads(body)
        seq = int(payload["s"])
        if "p" in payload:
            pid, coords, stamp = payload["p"]
            return seq, StreamPoint(
                int(pid), tuple(float(c) for c in coords), float(stamp)
            )
        line_no, raw, error = payload["m"]
        return seq, MalformedRecord(int(line_no), str(raw), str(error))
    except (KeyError, TypeError, ValueError) as exc:
        raise WalError(f"undecodable WAL record body: {exc}") from exc


def frame(body: bytes) -> bytes:
    """Length-prefix + CRC32 framing around one record body."""
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


# ------------------------------------------------------------------ segments


@dataclass
class _Segment:
    """One on-disk segment: its path and the seq range it holds."""

    path: Path
    first_seq: int
    last_seq: int = -1  # -1: empty (no complete record yet)
    size: int = 0
    synced_size: int = 0  # bytes known durable (for power-loss simulation)
    records: int = 0

    @property
    def empty(self) -> bool:
        return self.last_seq < self.first_seq


def _scan_segment(
    path: Path,
    expect_seq: int,
    decode=decode_item,
    max_record_bytes: int = MAX_RECORD_BYTES,
) -> tuple[list[tuple[int, int]], int]:
    """Validate one segment file front to back.

    Returns ``(records, good_bytes)`` where ``records`` is a list of
    ``(seq, frame_offset)`` for every complete, CRC-valid, contiguous
    record, and ``good_bytes`` is the clean prefix length. Anything past
    ``good_bytes`` — a torn header, a body cut short, a CRC mismatch, a
    sequence gap — is corruption to be truncated by the caller.
    """
    data = path.read_bytes()
    records: list[tuple[int, int]] = []
    offset = 0
    seq = expect_seq
    while True:
        if offset + _HEADER.size > len(data):
            break  # torn header (or clean EOF)
        length, crc = _HEADER.unpack_from(data, offset)
        if length > max_record_bytes:
            break  # corrupted length prefix
        body_start = offset + _HEADER.size
        if body_start + length > len(data):
            break  # body cut short
        body = data[body_start : body_start + length]
        if zlib.crc32(body) != crc:
            break  # bit rot / mid-record overwrite
        try:
            rec_seq, _ = decode(body)
        except WalError:
            break  # valid CRC over garbage should be impossible; be safe
        if rec_seq != seq:
            break  # sequence gap — a record is missing or duplicated
        records.append((seq, offset))
        seq += 1
        offset = body_start + length
    return records, offset


class SegmentedLog:
    """Append-only, segmented, torn-write-safe journal of framed records.

    Opening a log performs the recovery scan: every segment is validated
    front to back, the first invalid byte truncates its segment, and any
    later segments (whose records would leave a hole) are deleted — the log
    always reopens to the longest clean, contiguous prefix of what was ever
    acknowledged.

    Subclasses provide the record codec (:meth:`_encode_body` /
    :meth:`_decode_body`), the segment file ``prefix``, and the per-record
    size ceiling ``max_record_bytes``.

    Args:
        directory: segment directory; created when missing.
        fsync: one of :data:`FSYNC_POLICIES`.
        fsync_every: records per fsync under ``every_n``.
        fsync_interval_s: seconds between fsyncs under ``interval``.
        segment_bytes: rotation threshold for the active segment.
        stats: a :class:`WalStats` to adopt (the serving layer passes the
            previous incarnation's stats across tenant restarts).
        fault: optional injection point — called as ``fault(n_bytes)``
            before every physical append; raising ``OSError`` simulates a
            full disk (see :class:`repro.runtime.chaos.DiskFull`).
    """

    prefix = "log"
    max_record_bytes = MAX_RECORD_BYTES

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: str = "always",
        fsync_every: int = 64,
        fsync_interval_s: float = 0.05,
        segment_bytes: int = 4 * 1024 * 1024,
        stats: WalStats | None = None,
        fault=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if fsync_every < 1:
            raise WalError(f"fsync_every must be >= 1, got {fsync_every}")
        if segment_bytes < 1:
            raise WalError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_every = fsync_every
        self.fsync_interval_s = float(fsync_interval_s)
        self.segment_bytes = segment_bytes
        self.stats = stats if stats is not None else WalStats()
        self.fault = fault
        self._handle = None  # open file of the active segment
        self._unsynced = 0  # records appended since the last fsync
        self._last_sync = time.monotonic()
        self._broken: str | None = None
        self._segments: list[_Segment] = []
        self.next_seq = 0
        self._recover()

    # ------------------------------------------------------------- codec

    def _encode_body(self, seq: int, item) -> bytes:
        """Record body for ``item`` at sequence number ``seq``."""
        raise NotImplementedError

    def _decode_body(self, body: bytes):
        """Inverse of :meth:`_encode_body` → ``(seq, item)``; raise
        :class:`WalError` on garbage."""
        raise NotImplementedError

    # ------------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Scan all segments, truncate the torn tail, set ``next_seq``."""
        paths = sorted(self.directory.glob(f"{self.prefix}-*.seg"))
        segments: list[_Segment] = []
        truncated = False
        for path in paths:
            try:
                first_seq = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue  # foreign file; leave it alone
            if truncated:
                # A previous segment lost its tail: later records would
                # leave a hole in the sequence, so they cannot be kept.
                path.unlink()
                continue
            if segments and first_seq != segments[-1].last_seq + 1:
                # Gap between segments (manual deletion, lost rename):
                # everything from here on is unreachable by replay.
                truncated = True
                path.unlink()
                continue
            records, good_bytes = _scan_segment(
                path, first_seq, self._decode_body, self.max_record_bytes
            )
            size = path.stat().st_size
            if good_bytes < size:
                with open(path, "r+b") as handle:
                    handle.truncate(good_bytes)
                truncated = True
            if not records and segments:
                # A fully-torn (now empty) non-first segment carries no
                # information; drop it so naming stays consistent.
                path.unlink()
                continue
            segments.append(
                _Segment(
                    path=path,
                    first_seq=first_seq,
                    last_seq=first_seq + len(records) - 1,
                    size=good_bytes,
                    synced_size=good_bytes,
                    records=len(records),
                )
            )
        if truncated:
            self.stats.truncated_tail += 1
        self._segments = segments
        self.next_seq = segments[-1].last_seq + 1 if segments else 0

    # ------------------------------------------------------------- appending

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable-framed record (-1: none)."""
        return self.next_seq - 1

    @property
    def floor_seq(self) -> int:
        """Oldest sequence number still retained (== ``next_seq`` if empty)."""
        for segment in self._segments:
            if not segment.empty:
                return segment.first_seq
        return self.next_seq

    def append(self, item) -> int:
        """Frame and write one item; return its sequence number.

        The write lands in the OS page cache; durability follows at the
        next :meth:`commit` according to the fsync policy. On a physical
        write failure (e.g. ``ENOSPC``) the active segment is rolled back
        to its last consistent size and :class:`WalError` is raised — the
        item was *not* journaled and must not be acknowledged.
        """
        if self._broken is not None:
            raise WalError(f"{type(self).__name__} is broken: {self._broken}")
        seq = self.next_seq
        body = self._encode_body(seq, item)
        if len(body) > self.max_record_bytes:
            raise WalError(
                f"record body of {len(body)} bytes exceeds the "
                f"{self.max_record_bytes}-byte ceiling"
            )
        data = frame(body)
        segment = self._active_segment(len(data))
        try:
            if self.fault is not None:
                self.fault(len(data))
            self._handle.write(data)
        except OSError as exc:
            self._rollback(segment, exc)
            raise WalError(f"append failed: {exc}") from exc
        segment.size += len(data)
        segment.last_seq = seq
        segment.records += 1
        self.next_seq = seq + 1
        self._unsynced += 1
        self.stats.appends += 1
        self.stats.bytes += len(data)
        return seq

    def commit(self) -> None:
        """The ACK boundary: make appended records durable per the policy."""
        if self._unsynced == 0:
            return
        if self.fsync == "always":
            self.sync()
        elif self.fsync == "every_n":
            if self._unsynced >= self.fsync_every:
                self.sync()
        else:  # interval
            if time.monotonic() - self._last_sync >= self.fsync_interval_s:
                self.sync()

    def sync(self) -> None:
        """Unconditional flush + fsync of the active segment."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        segment = self._segments[-1]
        segment.synced_size = segment.size
        self._unsynced = 0
        self._last_sync = time.monotonic()
        self.stats.fsyncs += 1

    def close(self) -> None:
        """Fsync and close the active segment (crash-equivalent if skipped)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def _active_segment(self, incoming: int) -> _Segment:
        """The segment the next record goes to, rotating when full."""
        if self._segments and self._handle is not None:
            active = self._segments[-1]
            if active.size + incoming <= self.segment_bytes or active.records == 0:
                return active
            # Rotate: seal the full segment durably before moving on, so a
            # crash between the two files can only tear the *new* one.
            self.sync()
            self._handle.close()
            self._handle = None
        path = self.directory / f"{self.prefix}-{self.next_seq:012d}.seg"
        if self._handle is None:
            if not self._segments or self._segments[-1].path != path:
                self._segments.append(_Segment(path=path, first_seq=self.next_seq))
            self._handle = open(path, "ab")
        return self._segments[-1]

    def _rollback(self, segment: _Segment, exc: OSError) -> None:
        """Cut a failed partial write so the tail stays frame-aligned."""
        try:
            self._handle.flush()
        except OSError:
            pass
        try:
            os.ftruncate(self._handle.fileno(), segment.size)
            self._handle.seek(segment.size)
        except OSError as trunc_exc:
            # Cannot restore frame alignment: further appends would corrupt
            # the log, so refuse them until the log is reopened (the
            # recovery scan will cut the partial frame).
            self._broken = (
                f"rollback after failed append also failed ({trunc_exc}); "
                "reopen the log to recover"
            )

    # ------------------------------------------------------------- reading

    def scan(self, from_seq: int, to_seq: int | None = None):
        """Yield ``(seq, item)`` for records with ``from_seq <= seq``
        (``< to_seq`` when given), in sequence order."""
        self.flush()
        for segment in list(self._segments):
            if segment.empty or segment.last_seq < from_seq:
                continue
            if to_seq is not None and segment.first_seq >= to_seq:
                break
            data = segment.path.read_bytes()[: segment.size]
            offset = 0
            while offset + _HEADER.size <= len(data):
                length, _ = _HEADER.unpack_from(data, offset)
                body = data[offset + _HEADER.size : offset + _HEADER.size + length]
                seq, item = self._decode_body(body)
                if to_seq is not None and seq >= to_seq:
                    return
                if seq >= from_seq:
                    yield seq, item
                offset += _HEADER.size + length

    def flush(self) -> None:
        """Flush buffered writes (no fsync) so reads see every append."""
        if self._handle is not None:
            self._handle.flush()

    # ------------------------------------------------------------- compaction

    def compact(self, upto_seq: int) -> int:
        """Delete segments fully covered by a checkpoint at ``upto_seq``.

        A segment may be garbage-collected once every record in it has a
        sequence number below ``upto_seq`` — i.e. the durable checkpoint's
        ``stream_offset`` already accounts for all of them. The active
        (last) segment is never deleted. Returns the number of segments
        removed.
        """
        removed = 0
        while len(self._segments) > 1:
            head = self._segments[0]
            if head.last_seq >= upto_seq or head.empty:
                break
            try:
                head.path.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                pass
            self._segments.pop(0)
            removed += 1
        return removed

    # ------------------------------------------------------------- inspection

    def segments(self) -> list[Path]:
        """Segment paths currently on disk, oldest first."""
        return [s.path for s in self._segments]

    def durable_extents(self) -> dict[Path, int]:
        """Bytes per segment known to have been fsynced.

        :func:`repro.runtime.chaos.power_loss` truncates files to these
        extents to simulate what a ``kill -9`` + power cut would leave
        behind under the weaker fsync policies.
        """
        return {s.path: s.synced_size for s in self._segments}

    def __len__(self) -> int:
        return sum(s.records for s in self._segments)


class WriteAheadLog(SegmentedLog):
    """The ingest write-ahead log: admitted stream items, pre-pipeline.

    See :class:`SegmentedLog` for the storage engine (recovery, fsync
    policies, rotation, compaction); this subclass fixes the codec to the
    ``{"s": seq, "p"|"m": [...]}`` item encoding and adds :meth:`replay`.
    """

    prefix = "wal"
    max_record_bytes = MAX_RECORD_BYTES

    def _encode_body(self, seq: int, item) -> bytes:
        return encode_item(seq, item)

    def _decode_body(self, body: bytes):
        return decode_item(body)

    def append(self, item: StreamPoint | MalformedRecord) -> int:
        """Frame and write one item; return its admission sequence number."""
        return super().append(item)

    def replay(self, from_seq: int) -> list[StreamPoint | MalformedRecord]:
        """Items with sequence number >= ``from_seq``, in admission order.

        This is the recovery tail: a resumed pipeline restores its
        checkpoint (covering ``[0, stream_offset)``) and replays
        ``replay(stream_offset)`` to reconstruct every acknowledged item
        past it.
        """
        items = [item for _, item in self.scan(from_seq)]
        self.stats.replayed += len(items)
        return items
