"""Resilient streaming runtime layered over the DISC clusterer.

The core algorithm (``repro.core``) assumes clean, uninterrupted input; this
package supplies everything a real deployment needs around it:

- :class:`~repro.runtime.store.CheckpointStore` — a durable on-disk
  checkpoint store (atomic write-tmp-fsync-rename, CRC + format validation,
  rotation, stride-offset metadata).
- :class:`~repro.runtime.supervisor.Supervisor` — drives a stream through
  DISC, checkpoints every N strides at stride boundaries, and resumes after
  a crash by restoring state and replaying only the partial stride, with
  byte-identical results to an uninterrupted run.
- :class:`~repro.runtime.policies.InputGuard` — input-fault policies
  (``strict`` / ``skip`` / ``clamp``) for malformed records, non-finite
  coordinates and out-of-order timestamps, with a dead-letter sink and
  per-reason counters surfaced through :class:`~repro.runtime.stats.RuntimeStats`.
- :class:`~repro.runtime.wal.WriteAheadLog` — a segmented, CRC-framed
  per-tenant write-ahead log (configurable fsync policy, torn-tail
  recovery, checkpoint-keyed compaction) closing the serve layer's
  acknowledged-but-unjournaled durability hole.
- :mod:`~repro.runtime.chaos` — a fault-injection harness (kill at stride
  boundaries, corrupt checkpoints, flaky index queries, torn WAL writes,
  bit flips, simulated power loss and full disks) used by the test suite
  to prove the recovery contract.
- :mod:`~repro.runtime.invariants` — a debug-mode state checker that
  degrades to a full re-cluster with a logged warning instead of letting a
  corrupted incremental state propagate silently.
"""

from repro.runtime.chaos import (
    ChaosKill,
    ChaosMonkey,
    DiskFull,
    FlakyIndex,
    RuntimeHooks,
    bit_flip,
    corrupt_checkpoint,
    power_loss,
    torn_write,
    truncate_mid_record,
)
from repro.runtime.invariants import check_state, rebuild
from repro.runtime.policies import (
    DeadLetterSink,
    FaultPolicy,
    InputGuard,
    MalformedPointError,
    read_dead_letters,
)
from repro.runtime.stats import RuntimeStats
from repro.runtime.store import CheckpointStore
from repro.runtime.supervisor import Supervisor
from repro.runtime.wal import WAL_FIELDS, WalError, WalStats, WriteAheadLog

__all__ = [
    "ChaosKill",
    "ChaosMonkey",
    "CheckpointStore",
    "DeadLetterSink",
    "DiskFull",
    "FaultPolicy",
    "FlakyIndex",
    "InputGuard",
    "MalformedPointError",
    "RuntimeHooks",
    "RuntimeStats",
    "Supervisor",
    "WAL_FIELDS",
    "WalError",
    "WalStats",
    "WriteAheadLog",
    "bit_flip",
    "check_state",
    "corrupt_checkpoint",
    "power_loss",
    "read_dead_letters",
    "rebuild",
    "torn_write",
    "truncate_mid_record",
]
