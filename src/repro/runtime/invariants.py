"""Debug-mode consistency checks over DISC's incremental state.

DISC's exactness rests on three structural invariants that an incremental
bug (or a bad restore) would silently violate long before the output looks
obviously wrong:

- **n_eps consistency** — every live record's cached neighbour count equals
  what the spatial index actually reports for its epsilon-ball;
- **anchor validity** — every border point's anchor names a live core
  within epsilon (the channel through which borders resolve a cluster id);
- **cid-forest acyclicity** — the union-find parent map contains no cycle,
  so ``find`` terminates and every core's cluster id resolves.

:func:`check_state` reports violations as human-readable strings.
:func:`rebuild` is the graceful degradation path: re-cluster the current
window from scratch (same parameters, same index backend), trading one
expensive stride for a state that is correct by construction. The
:class:`~repro.runtime.supervisor.Supervisor` invokes both when running
with ``check_invariants=True`` and logs a warning instead of carrying the
corruption forward.
"""

from __future__ import annotations

import math

from repro.common.points import StreamPoint
from repro.core.disc import DISC

MAX_REPORTED = 8


def check_state(disc: DISC) -> list[str]:
    """Return violation descriptions for ``disc``'s current state ([] = ok)."""
    violations: list[str] = []
    state = disc.state
    eps = disc.params.eps
    live = [rec for rec in state.records.values() if not rec.deleted]

    # n_eps consistency, batched through the index's hot-path layer.
    counts = disc.index.count_ball_many([rec.coords for rec in live], eps)
    for rec, expected in zip(live, counts):
        if rec.n_eps != expected:
            violations.append(
                f"n_eps mismatch for point {rec.pid}: cached {rec.n_eps}, "
                f"index reports {expected}"
            )

    # Border anchors point at live cores within epsilon.
    for rec in live:
        if state.is_core(rec) or rec.c_core <= 0:
            continue
        if rec.anchor is None:
            violations.append(f"border {rec.pid} has no anchor")
            continue
        anchor = state.records.get(rec.anchor)
        if anchor is None or anchor.deleted:
            violations.append(
                f"border {rec.pid} anchored to absent point {rec.anchor}"
            )
        elif not state.is_core(anchor):
            violations.append(
                f"border {rec.pid} anchored to non-core {rec.anchor}"
            )
        elif math.dist(rec.coords, anchor.coords) > eps:
            violations.append(
                f"border {rec.pid} anchored to out-of-range core {rec.anchor}"
            )

    violations.extend(_forest_cycles(state.cids._parent))

    if len(violations) > MAX_REPORTED:
        extra = len(violations) - MAX_REPORTED
        violations = violations[:MAX_REPORTED]
        violations.append(f"... and {extra} more violations")
    return violations


def _forest_cycles(parent: dict[int, int]) -> list[str]:
    """Detect cycles in a union-find parent map without mutating it."""
    verdict: dict[int, bool] = {}  # id -> participates in a cycle
    for start in parent:
        path = []
        node = start
        while node not in verdict and parent.get(node, node) != node:
            if node in path:
                loop = path[path.index(node):]
                for member in loop:
                    verdict[member] = True
                break
            path.append(node)
            node = parent[node]
        on_cycle = verdict.get(node, False)
        for member in path:
            verdict.setdefault(member, on_cycle)
    cycles = sorted(pid for pid, bad in verdict.items() if bad)
    if not cycles:
        return []
    return [f"cid forest contains a cycle through ids {cycles[:MAX_REPORTED]}"]


def rebuild(disc: DISC) -> DISC:
    """Re-cluster the current window from scratch with the same config.

    The fresh instance is DBSCAN-correct by construction. Cluster ids are
    freshly minted, so incremental lineage (event continuity) is lost — the
    documented price of recovering from a corrupted state.
    """
    fresh = DISC(
        disc.params.eps,
        disc.params.tau,
        index=disc.params.index,
        multi_starter=disc.multi_starter,
        epoch_probing=disc.epoch_probing,
    )
    points = [
        StreamPoint(rec.pid, rec.coords, rec.time)
        for rec in disc.state.records.values()
        if not rec.deleted
    ]
    fresh.advance(points, ())
    # Attached only after the bulk re-insert so the trace keeps its
    # one-record-per-stream-stride shape.
    fresh.tracer = disc.tracer
    return fresh
