"""Fault-injection harness for the resilient runtime.

Recovery code that is never exercised is broken code. This module gives the
test suite (and operators rehearsing incident response) three precise ways
to hurt a run:

- :class:`ChaosMonkey` — runtime hooks that kill the run at a chosen stride
  boundary (or after a chosen checkpoint) by raising :class:`ChaosKill`;
- :func:`corrupt_checkpoint` — flip bytes inside a checkpoint file so the
  store's CRC validation must catch it;
- :class:`FlakyIndex` — a :class:`~repro.index.base.NeighborIndex` wrapper
  whose queries start raising after a fuse burns down, simulating a failing
  index substrate mid-stride.

The recovery contract proven by ``tests/test_runtime_recovery.py``: kill a
supervised run at *any* stride boundary, resume from the store, and the
final snapshot is byte-identical to an uninterrupted run — on every
registered index backend.
"""

from __future__ import annotations

import os

from repro.common.errors import IndexError_, ReproError
from repro.index.base import NeighborIndex


class ChaosKill(ReproError):
    """Injected crash: the simulated process death of a supervised run."""


class RuntimeHooks:
    """Observation/injection points the Supervisor calls around each stride.

    Subclass and override what you need; the default implementations do
    nothing. Any hook may raise to simulate a crash at that point.
    """

    def before_stride(self, stride: int) -> None:
        """Called at the boundary before stride ``stride`` is processed."""

    def after_stride(self, stride: int, summary) -> None:
        """Called after stride ``stride`` completed (pre-checkpoint)."""

    def after_checkpoint(self, stride: int, path) -> None:
        """Called after a checkpoint for ``stride`` was durably written."""


class ChaosMonkey(RuntimeHooks):
    """Hooks that kill the run at configured points.

    Args:
        kill_before_stride: raise :class:`ChaosKill` at the boundary before
            this stride index is processed (0-based; the uninterrupted run
            numbers its strides 0, 1, 2, ...).
        kill_after_checkpoint: raise right after the checkpoint taken at
            this stride count is written — the worst case for resume logic
            (state persisted, progress lost).
    """

    def __init__(
        self,
        kill_before_stride: int | None = None,
        kill_after_checkpoint: int | None = None,
    ) -> None:
        self.kill_before_stride = kill_before_stride
        self.kill_after_checkpoint = kill_after_checkpoint
        self.kills = 0

    def before_stride(self, stride: int) -> None:
        if self.kill_before_stride is not None and stride >= self.kill_before_stride:
            self.kills += 1
            raise ChaosKill(
                f"chaos: injected crash at the boundary before stride {stride}"
            )

    def after_checkpoint(self, stride: int, path) -> None:
        if (
            self.kill_after_checkpoint is not None
            and stride >= self.kill_after_checkpoint
        ):
            self.kills += 1
            raise ChaosKill(
                f"chaos: injected crash right after checkpoint at stride {stride}"
            )


def corrupt_checkpoint(path: str | os.PathLike, offset: int = -20) -> None:
    """Flip one byte of a checkpoint file, in place.

    ``offset`` indexes into the file (negative = from the end; the default
    lands inside the JSON payload, past the envelope header). The flip XORs
    the byte with 0x01 after nudging digits, so the file stays the same
    length — simulating silent bit rot rather than truncation.
    """
    with open(path, "r+b") as handle:
        data = bytearray(handle.read())
        if not data:
            raise ReproError(f"cannot corrupt empty file {path}")
        index = offset % len(data)
        byte = data[index]
        if ord("0") <= byte <= ord("9"):
            # Rotate a digit so the JSON stays parseable but the CRC breaks.
            data[index] = ord("0") + (byte - ord("0") + 1) % 10
        else:
            data[index] = byte ^ 0x01
        handle.seek(0)
        handle.write(data)
        handle.truncate()


class FlakyIndex(NeighborIndex):
    """Index wrapper whose queries fail once a fuse burns down.

    Args:
        inner: the real backend.
        fail_after: number of range queries (``ball`` / ``count_ball`` and
            their batched forms) served before every further query raises.
        exc: exception type raised once the fuse is burnt.
    """

    # Declared epoch-less so the EpochAdapter wraps us and every probe
    # routes through the fuse.
    supports_epochs = False

    def __init__(
        self,
        inner: NeighborIndex,
        fail_after: int,
        exc: type[Exception] = IndexError_,
    ) -> None:
        self.inner = inner
        self.fail_after = fail_after
        self.exc = exc
        self.queries = 0
        self.radius_cap = inner.radius_cap

    @property
    def stats(self):
        return self.inner.stats

    def _fuse(self) -> None:
        self.queries += 1
        if self.queries > self.fail_after:
            raise self.exc(
                f"chaos: index query #{self.queries} failed "
                f"(fuse was {self.fail_after})"
            )

    # ------------------------------------------------------------- primitives

    def insert(self, pid, coords):
        self.inner.insert(pid, coords)

    def delete(self, pid):
        self.inner.delete(pid)

    def ball(self, center, radius):
        self._fuse()
        return self.inner.ball(center, radius)

    def count_ball(self, center, radius):
        self._fuse()
        return self.inner.count_ball(center, radius)

    def ball_many(self, centers, radius):
        self._fuse()
        return self.inner.ball_many(centers, radius)

    def count_ball_many(self, centers, radius):
        self._fuse()
        return self.inner.count_ball_many(centers, radius)

    def ball_pids(self, center, radius):
        self._fuse()
        return self.inner.ball_pids(center, radius)

    def ball_many_pids(self, centers, radius):
        self._fuse()
        return self.inner.ball_many_pids(centers, radius)

    def coords_of(self, pid):
        return self.inner.coords_of(pid)

    def items(self):
        return self.inner.items()

    def insert_many(self, items):
        self.inner.insert_many(items)

    def delete_many(self, pids):
        self.inner.delete_many(pids)

    def __len__(self):
        return len(self.inner)

    def __contains__(self, pid):
        return pid in self.inner
