"""Fault-injection harness for the resilient runtime.

Recovery code that is never exercised is broken code. This module gives the
test suite (and operators rehearsing incident response) three precise ways
to hurt a run:

- :class:`ChaosMonkey` — runtime hooks that kill the run at a chosen stride
  boundary (or after a chosen checkpoint) by raising :class:`ChaosKill`;
- :func:`corrupt_checkpoint` — flip bytes inside a checkpoint file so the
  store's CRC validation must catch it;
- :class:`FlakyIndex` — a :class:`~repro.index.base.NeighborIndex` wrapper
  whose queries start raising after a fuse burns down, simulating a failing
  index substrate mid-stride;
- write-ahead-log faults — :func:`torn_write`, :func:`truncate_mid_record`,
  :func:`bit_flip`, :func:`power_loss`, and :class:`DiskFull`, covering the
  four ways a journal dies in production: a crash mid-append, a filesystem
  that lost the tail, silent bit rot, and a full disk.

The recovery contract proven by ``tests/test_runtime_recovery.py``: kill a
supervised run at *any* stride boundary, resume from the store, and the
final snapshot is byte-identical to an uninterrupted run — on every
registered index backend.
"""

from __future__ import annotations

import errno
import os
import struct
import zlib

from repro.common.errors import IndexError_, ReproError
from repro.index.base import NeighborIndex


class ChaosKill(ReproError):
    """Injected crash: the simulated process death of a supervised run."""


class RuntimeHooks:
    """Observation/injection points the Supervisor calls around each stride.

    Subclass and override what you need; the default implementations do
    nothing. Any hook may raise to simulate a crash at that point.
    """

    def before_stride(self, stride: int) -> None:
        """Called at the boundary before stride ``stride`` is processed."""

    def after_stride(self, stride: int, summary) -> None:
        """Called after stride ``stride`` completed (pre-checkpoint)."""

    def before_checkpoint(self, stride: int) -> None:
        """Called just before a checkpoint for ``stride`` is written.

        The serving layer syncs the evolution journal here so a durable
        checkpoint can never get ahead of the CDC history it implies —
        after any crash the journal holds every stride the checkpoint
        covers, and WAL-tail replay re-derives the rest.
        """

    def after_checkpoint(self, stride: int, path) -> None:
        """Called after a checkpoint for ``stride`` was durably written."""


class ChaosMonkey(RuntimeHooks):
    """Hooks that kill the run at configured points.

    Args:
        kill_before_stride: raise :class:`ChaosKill` at the boundary before
            this stride index is processed (0-based; the uninterrupted run
            numbers its strides 0, 1, 2, ...).
        kill_after_checkpoint: raise right after the checkpoint taken at
            this stride count is written — the worst case for resume logic
            (state persisted, progress lost).
    """

    def __init__(
        self,
        kill_before_stride: int | None = None,
        kill_after_checkpoint: int | None = None,
    ) -> None:
        self.kill_before_stride = kill_before_stride
        self.kill_after_checkpoint = kill_after_checkpoint
        self.kills = 0

    def before_stride(self, stride: int) -> None:
        if self.kill_before_stride is not None and stride >= self.kill_before_stride:
            self.kills += 1
            raise ChaosKill(
                f"chaos: injected crash at the boundary before stride {stride}"
            )

    def after_checkpoint(self, stride: int, path) -> None:
        if (
            self.kill_after_checkpoint is not None
            and stride >= self.kill_after_checkpoint
        ):
            self.kills += 1
            raise ChaosKill(
                f"chaos: injected crash right after checkpoint at stride {stride}"
            )


def enumerate_fault_points(
    n_strides: int, checkpoint_every: int
) -> list[dict[str, int]]:
    """Every distinct :class:`ChaosMonkey` kill site of an ``n_strides`` run.

    Returns one kwargs dict per site, in boundary order: a
    ``kill_before_stride`` for every stride boundary after the first (a
    kill before stride 0 never starts the run, so it proves nothing), and
    a ``kill_after_checkpoint`` for every checkpoint the run would take
    under ``checkpoint_every`` — the state-persisted/progress-lost worst
    case. The fuzz harness samples these; exhaustive sweeps (the recovery
    tests) iterate them all.
    """
    if n_strides < 1:
        return []
    points: list[dict[str, int]] = [
        {"kill_before_stride": stride} for stride in range(1, n_strides)
    ]
    if checkpoint_every >= 1:
        points.extend(
            {"kill_after_checkpoint": stride}
            for stride in range(checkpoint_every, n_strides + 1, checkpoint_every)
        )
    return points


def corrupt_checkpoint(path: str | os.PathLike, offset: int = -20) -> None:
    """Flip one byte of a checkpoint file, in place.

    ``offset`` indexes into the file (negative = from the end; the default
    lands inside the JSON payload, past the envelope header). The flip XORs
    the byte with 0x01 after nudging digits, so the file stays the same
    length — simulating silent bit rot rather than truncation.
    """
    with open(path, "r+b") as handle:
        data = bytearray(handle.read())
        if not data:
            raise ReproError(f"cannot corrupt empty file {path}")
        index = offset % len(data)
        byte = data[index]
        if ord("0") <= byte <= ord("9"):
            # Rotate a digit so the JSON stays parseable but the CRC breaks.
            data[index] = ord("0") + (byte - ord("0") + 1) % 10
        else:
            data[index] = byte ^ 0x01
        handle.seek(0)
        handle.write(data)
        handle.truncate()


class FlakyIndex(NeighborIndex):
    """Index wrapper whose queries fail once a fuse burns down.

    Args:
        inner: the real backend.
        fail_after: number of range queries (``ball`` / ``count_ball`` and
            their batched forms) served before every further query raises.
        exc: exception type raised once the fuse is burnt.
    """

    # Declared epoch-less so the EpochAdapter wraps us and every probe
    # routes through the fuse.
    supports_epochs = False

    def __init__(
        self,
        inner: NeighborIndex,
        fail_after: int,
        exc: type[Exception] = IndexError_,
    ) -> None:
        self.inner = inner
        self.fail_after = fail_after
        self.exc = exc
        self.queries = 0
        self.radius_cap = inner.radius_cap

    @property
    def stats(self):
        return self.inner.stats

    def _fuse(self) -> None:
        self.queries += 1
        if self.queries > self.fail_after:
            raise self.exc(
                f"chaos: index query #{self.queries} failed "
                f"(fuse was {self.fail_after})"
            )

    # ------------------------------------------------------------- primitives

    def insert(self, pid, coords):
        self.inner.insert(pid, coords)

    def delete(self, pid):
        self.inner.delete(pid)

    def ball(self, center, radius):
        self._fuse()
        return self.inner.ball(center, radius)

    def count_ball(self, center, radius):
        self._fuse()
        return self.inner.count_ball(center, radius)

    def ball_many(self, centers, radius):
        self._fuse()
        return self.inner.ball_many(centers, radius)

    def count_ball_many(self, centers, radius):
        self._fuse()
        return self.inner.count_ball_many(centers, radius)

    def ball_pids(self, center, radius):
        self._fuse()
        return self.inner.ball_pids(center, radius)

    def ball_many_pids(self, centers, radius):
        self._fuse()
        return self.inner.ball_many_pids(centers, radius)

    def coords_of(self, pid):
        return self.inner.coords_of(pid)

    def items(self):
        return self.inner.items()

    def insert_many(self, items):
        self.inner.insert_many(items)

    def delete_many(self, pids):
        self.inner.delete_many(pids)

    def __len__(self):
        return len(self.inner)

    def __contains__(self, pid):
        return pid in self.inner


# ---------------------------------------------------------------- WAL faults
#
# These operate on raw segment files (any file, really) and simulate the
# damage a write-ahead log must survive: the recovery scan in
# :class:`repro.runtime.wal.WriteAheadLog` must reopen every one of these
# to a clean, contiguous prefix.

_WAL_HEADER = struct.Struct("<II")


def torn_write(path: str | os.PathLike, keep_bytes: int | None = None) -> int:
    """Tear the file mid-frame, as a crash during ``write()`` would.

    Truncates ``path`` to ``keep_bytes`` (default: half a header past the
    last full record boundary — guaranteed to land *inside* a frame).
    Returns the resulting file size.
    """
    size = os.path.getsize(path)
    if keep_bytes is None:
        keep_bytes = max(0, size - _last_frame_length(path) + _WAL_HEADER.size // 2)
    keep_bytes = max(0, min(keep_bytes, size))
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
    return keep_bytes


def truncate_mid_record(path: str | os.PathLike) -> int:
    """Cut the last record's *body* short (header intact, body torn).

    The length prefix promises more bytes than exist — the recovery scan
    must notice the short body rather than read past EOF. Returns the
    resulting file size.
    """
    size = os.path.getsize(path)
    last = _last_frame_length(path)
    if last <= _WAL_HEADER.size + 1:
        raise ReproError(f"no record body to truncate in {path}")
    keep = size - (last - _WAL_HEADER.size) // 2 - 1
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def bit_flip(path: str | os.PathLike, offset: int = -3) -> None:
    """Flip one bit inside the file, simulating silent media corruption.

    ``offset`` indexes into the file (negative = from the end; the default
    lands in the last record's body, so its CRC32 must catch the damage).
    """
    with open(path, "r+b") as handle:
        data = handle.read()
        if not data:
            raise ReproError(f"cannot bit-flip empty file {path}")
        index = offset % len(data)
        handle.seek(index)
        handle.write(bytes([data[index] ^ 0x40]))


def power_loss(wal) -> int:
    """Simulate a power cut: drop every byte not yet fsynced.

    Closes the log's file handle without syncing and truncates each
    segment to its last *fsynced* extent (``wal.durable_extents()``) —
    exactly what survives a kernel-buffer loss under the ``every_n`` and
    ``interval`` fsync policies. Returns the number of bytes destroyed.
    """
    extents = wal.durable_extents()
    if wal._handle is not None:
        wal._handle.flush()
        wal._handle.close()
        wal._handle = None
    lost = 0
    for path, synced in extents.items():
        size = os.path.getsize(path)
        if size > synced:
            with open(path, "r+b") as handle:
                handle.truncate(synced)
            lost += size - synced
    return lost


class DiskFull:
    """ENOSPC injector for the WAL's physical-write fault point.

    Pass as ``WriteAheadLog(..., fault=DiskFull(after_bytes=N))``: once N
    bytes have been written the "disk" is full and every further append
    raises ``OSError(ENOSPC)`` until :meth:`free` is called.
    """

    def __init__(self, after_bytes: int) -> None:
        self.after_bytes = after_bytes
        self.written = 0
        self.full = False

    def __call__(self, n_bytes: int) -> None:
        if self.full or self.written + n_bytes > self.after_bytes:
            self.full = True
            raise OSError(errno.ENOSPC, "chaos: no space left on device")
        self.written += n_bytes

    def free(self) -> None:
        """Clear the fault, as if an operator freed disk space."""
        self.full = False
        self.after_bytes = float("inf")


def _last_frame_length(path: str | os.PathLike) -> int:
    """Total framed length (header + body) of the file's last valid record."""
    data = open(path, "rb").read()
    offset = 0
    last = 0
    while offset + _WAL_HEADER.size <= len(data):
        length, crc = _WAL_HEADER.unpack_from(data, offset)
        body = data[offset + _WAL_HEADER.size : offset + _WAL_HEADER.size + length]
        if len(body) < length or zlib.crc32(body) != crc:
            break
        last = _WAL_HEADER.size + length
        offset += last
    if last == 0:
        raise ReproError(f"no complete record in {path}")
    return last
