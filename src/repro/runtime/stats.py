"""Operational counters of one supervised streaming run.

A :class:`RuntimeStats` instance travels with the
:class:`~repro.runtime.supervisor.Supervisor` (and can be passed to
:class:`~repro.runtime.policies.InputGuard` standalone). It is included in
every checkpoint payload so the counters survive a crash/resume cycle: a
resumed run reports totals as if it had never been interrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RuntimeStats:
    """Counters for input health, stride progress and checkpoint activity.

    Attributes:
        points_seen: raw stream items read from the source (including ones
            later clamped or dead-lettered).
        points_admitted: points that reached the windowing layer.
        points_clamped: points admitted after a ``clamp`` repair.
        points_dead_lettered: points diverted to the dead-letter sink.
        faults: per-reason fault counts (``nan_coord``, ``inf_coord``,
            ``bad_dim``, ``out_of_order``, ``unparsable``). A clamped fault
            and a dead-lettered fault both count here.
        strides: window advances processed.
        checkpoints_written: durable checkpoints persisted.
        resumes: how many times this logical run was resumed from a
            checkpoint.
        resumed_at_stride: stride offset of the most recent resume, if any.
        invariant_failures: debug-mode invariant violations detected.
        rebuilds: full re-clusters performed to recover from a violation.
    """

    points_seen: int = 0
    points_admitted: int = 0
    points_clamped: int = 0
    points_dead_lettered: int = 0
    faults: dict[str, int] = field(default_factory=dict)
    strides: int = 0
    checkpoints_written: int = 0
    resumes: int = 0
    resumed_at_stride: int | None = None
    invariant_failures: int = 0
    rebuilds: int = 0

    def count_fault(self, reason: str) -> None:
        self.faults[reason] = self.faults.get(reason, 0) + 1

    def as_dict(self) -> dict:
        """JSON-friendly form, embedded in checkpoint payloads."""
        return {
            "points_seen": self.points_seen,
            "points_admitted": self.points_admitted,
            "points_clamped": self.points_clamped,
            "points_dead_lettered": self.points_dead_lettered,
            "faults": dict(self.faults),
            "strides": self.strides,
            "checkpoints_written": self.checkpoints_written,
            "resumes": self.resumes,
            "resumed_at_stride": self.resumed_at_stride,
            "invariant_failures": self.invariant_failures,
            "rebuilds": self.rebuilds,
        }

    def restore(self, payload: dict) -> None:
        """Overwrite the counters from :meth:`as_dict` output."""
        self.points_seen = int(payload["points_seen"])
        self.points_admitted = int(payload["points_admitted"])
        self.points_clamped = int(payload["points_clamped"])
        self.points_dead_lettered = int(payload["points_dead_lettered"])
        self.faults = {str(k): int(v) for k, v in payload["faults"].items()}
        self.strides = int(payload["strides"])
        self.checkpoints_written = int(payload["checkpoints_written"])
        self.resumes = int(payload["resumes"])
        raw = payload.get("resumed_at_stride")
        self.resumed_at_stride = None if raw is None else int(raw)
        self.invariant_failures = int(payload["invariant_failures"])
        self.rebuilds = int(payload["rebuilds"])
