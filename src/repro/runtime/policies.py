"""Input-fault policies for the streaming path.

Real streams carry garbage: unparsable rows, NaN/inf coordinates, wrong
dimensionality, timestamps that jump backwards. :class:`InputGuard` sits
between the source and the windowing layer and applies one of three
policies per faulty record:

- ``strict`` — raise immediately (:class:`MalformedPointError`, or
  :class:`~repro.common.errors.StreamOrderError` for ordering faults) with
  full context. The default: fail loudly rather than cluster garbage.
- ``skip`` — divert the record to the dead-letter sink and continue.
- ``clamp`` — repair what is repairable (infinite coordinates are clamped
  to ±``clamp_limit``, out-of-order timestamps are lifted to the current
  watermark) and dead-letter the rest (NaN and dimensionality faults have
  no meaningful repair).

Every decision increments per-reason counters on a
:class:`~repro.runtime.stats.RuntimeStats`, so operators can alert on fault
rates instead of discovering them in the cluster output.
"""

from __future__ import annotations

import json
import math
import os
import zlib
from collections.abc import Iterable, Iterator
from enum import Enum

from repro.common.errors import ReproError, StreamOrderError
from repro.common.points import StreamPoint
from repro.datasets.io import MalformedRecord
from repro.runtime.stats import RuntimeStats


class MalformedPointError(ReproError):
    """Raised under the ``strict`` policy for an unusable stream record."""


class FaultPolicy(str, Enum):
    """What to do with a malformed stream record."""

    STRICT = "strict"
    SKIP = "skip"
    CLAMP = "clamp"

    @classmethod
    def coerce(cls, value: "FaultPolicy | str") -> "FaultPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ReproError(
                f"unknown fault policy {value!r}; "
                f"expected one of {', '.join(p.value for p in cls)}"
            ) from None


class DeadLetterSink:
    """Collector of rejected records, optionally mirrored to a JSONL file.

    Entries are ``(reason, item)`` pairs where ``item`` is the offending
    :class:`~repro.common.points.StreamPoint` or
    :class:`~repro.datasets.io.MalformedRecord`. The in-memory list is
    always kept; when ``path`` is given each entry is also appended as one
    JSON object per line, so a crashed run's dead letters survive too.

    Note: dead-letter delivery is *at-least-once* across crash/resume — the
    slice of stream replayed after a resume may re-record entries that were
    dead-lettered between the last checkpoint and the crash. The
    :class:`~repro.runtime.stats.RuntimeStats` counters, which ride inside
    checkpoints, stay exact.

    Crash safety: each mirrored row carries a ``crc32`` field computed over
    its canonical encoding (the row minus the ``crc32`` key, sorted keys,
    compact separators), and :func:`read_dead_letters` accepts exactly the
    longest clean prefix of a file — a torn final line (crash mid-write) or
    a bit-rotted row is cut instead of poisoning the whole mirror.
    :meth:`close` flushes *and fsyncs*, so a drained run's dead letters are
    durable, not just buffered.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.entries: list[tuple[str, object]] = []
        self._handle = open(path, "a") if path else None

    def record(self, reason: str, item: object) -> None:
        self.entries.append((reason, item))
        if self._handle is not None:
            if isinstance(item, StreamPoint):
                row = {
                    "reason": reason,
                    "pid": item.pid,
                    "coords": [repr(c) for c in item.coords],
                    "time": item.time,
                }
            elif isinstance(item, MalformedRecord):
                row = {
                    "reason": reason,
                    "line_no": item.line_no,
                    "raw": item.raw,
                    "error": item.error,
                }
            else:  # pragma: no cover - future item kinds
                row = {"reason": reason, "item": repr(item)}
            row["crc32"] = zlib.crc32(_canonical_row(row))
            self._handle.write(json.dumps(row) + "\n")
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __len__(self) -> int:
        return len(self.entries)


def _canonical_row(row: dict) -> bytes:
    """CRC input: the row without its ``crc32`` field, canonically encoded."""
    body = {key: value for key, value in row.items() if key != "crc32"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def read_dead_letters(path: str | os.PathLike) -> list[dict]:
    """Load a dead-letter mirror, keeping only its clean prefix.

    Returns the decoded rows up to (not including) the first line that is
    torn, not valid JSON, missing its ``crc32``, or fails the CRC check —
    the same clean-prefix semantics the write-ahead log's recovery scan
    applies to its segments. Unwritten suffixes are expected after a crash;
    they are cut silently rather than raised, because the prefix is still
    trustworthy and at-least-once delivery re-records the tail on resume.
    """
    rows: list[dict] = []
    try:
        lines = open(path, encoding="utf-8").read().split("\n")
    except OSError:
        return rows
    for line in lines:
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail (crash mid-write)
        if not isinstance(row, dict) or "crc32" not in row:
            break
        if zlib.crc32(_canonical_row(row)) != row["crc32"]:
            break  # bit rot
        rows.append(row)
    return rows


class InputGuard:
    """Apply a :class:`FaultPolicy` to a stream, point by point.

    Args:
        policy: what to do with faulty records.
        stats: counters to update; a fresh one is created when omitted.
        dead_letter: sink for rejected records; a fresh in-memory one is
            created when omitted.
        enforce_order: reject/repair timestamps that move backwards. On by
            default; harmless for count-based windows (their synthetic
            timestamps are monotone) and required for time-based ones.
        clamp_limit: magnitude infinite coordinates are clamped to under
            the ``clamp`` policy.
    """

    def __init__(
        self,
        policy: FaultPolicy | str = FaultPolicy.STRICT,
        stats: RuntimeStats | None = None,
        dead_letter: DeadLetterSink | None = None,
        *,
        enforce_order: bool = True,
        clamp_limit: float = 1e12,
    ) -> None:
        self.policy = FaultPolicy.coerce(policy)
        self.stats = stats if stats is not None else RuntimeStats()
        self.dead_letter = dead_letter if dead_letter is not None else DeadLetterSink()
        self.enforce_order = enforce_order
        self.clamp_limit = float(clamp_limit)
        self.watermark: float | None = None
        self.dim: int | None = None

    def admit(
        self, item: StreamPoint | MalformedRecord
    ) -> StreamPoint | None:
        """Vet one stream item; return the (possibly repaired) point or None.

        ``None`` means the item was dead-lettered. Under ``strict`` a fault
        raises instead.
        """
        self.stats.points_seen += 1
        if isinstance(item, MalformedRecord):
            return self._reject(
                "unparsable",
                item,
                f"unparsable stream record at line {item.line_no}: "
                f"{item.raw!r} ({item.error})",
            )

        point = item
        clamped = False

        fault = self._coord_fault(point)
        if fault is not None:
            reason, clampable = fault
            if self.policy is FaultPolicy.CLAMP and clampable:
                point = self._clamp_coords(point)
                clamped = True
                self.stats.count_fault(reason)
            else:
                return self._reject(
                    reason,
                    point,
                    f"point {point.pid} has {reason.replace('_', ' ')}: "
                    f"coords={point.coords}",
                )

        if self.dim is None:
            self.dim = len(point.coords)
        elif len(point.coords) != self.dim:
            return self._reject(
                "bad_dim",
                point,
                f"point {point.pid} has {len(point.coords)} coordinates; "
                f"this stream is {self.dim}-dimensional",
            )

        if (
            self.enforce_order
            and self.watermark is not None
            and point.time < self.watermark
        ):
            if self.policy is FaultPolicy.CLAMP:
                self.stats.count_fault("out_of_order")
                point = point._replace(time=self.watermark)
                clamped = True
            elif self.policy is FaultPolicy.SKIP:
                self.stats.count_fault("out_of_order")
                self.stats.points_dead_lettered += 1
                self.dead_letter.record("out_of_order", point)
                return None
            else:
                self.stats.count_fault("out_of_order")
                raise StreamOrderError(
                    f"point {point.pid} arrived out of order: its timestamp "
                    f"{point.time} precedes the stream watermark "
                    f"{self.watermark}"
                )

        self.watermark = (
            point.time
            if self.watermark is None
            else max(self.watermark, point.time)
        )
        self.stats.points_admitted += 1
        if clamped:
            self.stats.points_clamped += 1
        return point

    def filter(
        self, stream: Iterable[StreamPoint | MalformedRecord]
    ) -> Iterator[StreamPoint]:
        """Generator form of :meth:`admit` over a whole stream."""
        for item in stream:
            point = self.admit(item)
            if point is not None:
                yield point

    # ------------------------------------------------------------- internals

    def _coord_fault(self, point: StreamPoint) -> tuple[str, bool] | None:
        """Return ``(reason, clampable)`` for a coordinate fault, else None."""
        has_inf = False
        for c in point.coords:
            if math.isnan(c):
                return "nan_coord", False
            if math.isinf(c):
                has_inf = True
        if not point.coords:
            return "bad_dim", False
        if has_inf:
            return "inf_coord", True
        return None

    def _clamp_coords(self, point: StreamPoint) -> StreamPoint:
        limit = self.clamp_limit
        coords = tuple(
            max(-limit, min(limit, c)) if math.isinf(c) else c
            for c in point.coords
        )
        return point._replace(coords=coords)

    def _reject(
        self, reason: str, item: object, message: str
    ) -> None:
        self.stats.count_fault(reason)
        if self.policy is FaultPolicy.STRICT:
            raise MalformedPointError(message)
        self.stats.points_dead_lettered += 1
        self.dead_letter.record(reason, item)
        return None

    # ------------------------------------------------------- state round-trip

    def export_state(self) -> dict:
        """Guard state for checkpoint payloads (watermark + learned dim)."""
        return {"watermark": self.watermark, "dim": self.dim}

    def restore_state(self, state: dict) -> None:
        raw = state.get("watermark")
        self.watermark = None if raw is None else float(raw)
        dim = state.get("dim")
        self.dim = None if dim is None else int(dim)
