"""Durable on-disk checkpoint store with atomic writes and rotation.

One store owns one directory. Each checkpoint is a single JSON file named
``checkpoint-<stride>.json`` whose envelope carries a format version, the
stride offset it was taken at, and a CRC32 over the canonical encoding of
the payload:

.. code-block:: json

    {"format": 1, "stride": 42, "crc32": 3735928559, "payload": {...}}

Durability discipline (the classic write-tmp-fsync-rename dance):

1. the envelope is written to a ``.tmp`` file in the same directory;
2. the file is flushed and ``fsync``-ed;
3. ``os.replace`` atomically installs it under its final name;
4. the directory itself is ``fsync``-ed so the rename survives a crash.

A reader therefore never observes a torn file: either the old checkpoint
exists, or the new one does. Bit rot and manual tampering are caught by the
CRC on load; an unknown format version is rejected rather than guessed at.
Rotation keeps the newest ``keep`` checkpoints and deletes older ones after
every successful save.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path

from repro.core.checkpoint import CheckpointError

STORE_FORMAT = 1

_NAME = re.compile(r"^checkpoint-(\d{10})\.json$")


def _canonical(payload: dict) -> bytes:
    """Deterministic byte encoding of a payload, the CRC input.

    ``json.dumps`` with sorted keys and fixed separators is stable across
    dump/parse round-trips (Python floats serialize to their shortest
    round-trip repr), so the CRC can be recomputed from a parsed envelope.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class CheckpointStore:
    """Directory-backed store of versioned, CRC-protected checkpoints.

    Args:
        directory: where checkpoint files live; created if missing.
        keep: how many checkpoints to retain (>= 1). Older files are
            deleted after each successful save.
    """

    def __init__(self, directory: str | os.PathLike, keep: int = 3) -> None:
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.swept_orphans = self._sweep_orphans()

    def _sweep_orphans(self) -> int:
        """Delete ``*.tmp`` leftovers of a crash between write and rename.

        A crash inside :meth:`save` (after the tmp write, before the
        ``os.replace``) strands a ``checkpoint-*.json.tmp`` file that no
        rotation pass would ever touch — it is not a checkpoint, just dead
        bytes accumulating forever. They carry no recoverable state (the
        rename never happened, so the previous checkpoint is still the
        newest valid one); sweep them on startup. Returns the count.
        """
        swept = 0
        for stale in self.directory.glob("checkpoint-*.json.tmp"):
            try:
                stale.unlink()
                swept += 1
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                pass
        return swept

    # ---------------------------------------------------------------- writing

    def save(self, stride: int, payload: dict) -> Path:
        """Durably persist ``payload`` as the checkpoint for ``stride``.

        Returns the final file path. The write is atomic: a crash at any
        moment leaves either no new file or a complete, CRC-valid one.
        """
        body = _canonical(payload)
        envelope = {
            "format": STORE_FORMAT,
            "stride": int(stride),
            "crc32": zlib.crc32(body),
            "payload": payload,
        }
        final = self.directory / f"checkpoint-{stride:010d}.json"
        tmp = final.with_name(final.name + ".tmp")
        data = json.dumps(envelope, sort_keys=True).encode("utf-8")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._fsync_directory()
        self._rotate()
        return final

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir open
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - e.g. directories on some FSes
            pass
        finally:
            os.close(fd)

    def _rotate(self) -> None:
        paths = self.checkpoints()
        for stale in paths[: -self.keep]:
            try:
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                pass

    # ---------------------------------------------------------------- reading

    def checkpoints(self) -> list[Path]:
        """Checkpoint files on disk, oldest first (by stride)."""
        found = []
        for path in self.directory.iterdir():
            match = _NAME.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        found.sort()
        return [path for _, path in found]

    def load(self, path: str | os.PathLike) -> tuple[int, dict]:
        """Validate and decode one checkpoint file.

        Returns ``(stride, payload)``. Raises :class:`CheckpointError` when
        the file is unreadable, has an unknown format version, is missing
        envelope fields, or fails the CRC check.
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {path} is not valid JSON "
                f"(truncated or corrupted write?): {exc}"
            ) from exc
        if not isinstance(envelope, dict):
            raise CheckpointError(f"checkpoint {path}: envelope is not an object")
        fmt = envelope.get("format")
        if fmt != STORE_FORMAT:
            raise CheckpointError(
                f"checkpoint {path}: unsupported store format {fmt!r} "
                f"(this build reads format {STORE_FORMAT})"
            )
        for key in ("stride", "crc32", "payload"):
            if key not in envelope:
                raise CheckpointError(f"checkpoint {path}: missing {key!r}")
        payload = envelope["payload"]
        if not isinstance(payload, dict):
            raise CheckpointError(f"checkpoint {path}: payload is not an object")
        crc = zlib.crc32(_canonical(payload))
        if crc != envelope["crc32"]:
            raise CheckpointError(
                f"checkpoint {path} failed its integrity check "
                f"(crc32 {crc} != recorded {envelope['crc32']}); "
                "refusing to restore corrupted state"
            )
        return int(envelope["stride"]), payload

    def latest(self) -> tuple[int, dict]:
        """Load the newest checkpoint; raise when none exists or it is bad.

        Corruption is reported, not silently skipped: an operator must
        delete (or repair) a bad newest checkpoint deliberately before an
        older one will be used.
        """
        paths = self.checkpoints()
        if not paths:
            raise CheckpointError(
                f"no checkpoint found in {self.directory} (nothing to resume)"
            )
        return self.load(paths[-1])

    def __len__(self) -> int:
        return len(self.checkpoints())
