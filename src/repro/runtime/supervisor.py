"""The resilient driver: checkpointed, fault-policed stream clustering.

A :class:`Supervisor` owns one logical streaming run end to end: it vets
every incoming record through an :class:`~repro.runtime.policies.InputGuard`,
slices the admitted points with a checkpointable
:class:`~repro.window.sliding.WindowCursor`, advances a
:class:`~repro.core.disc.DISC` per stride, and every ``checkpoint_every``
strides persists the *complete* run state — clusterer, window cursor, guard
watermark, counters, and the stream offset — through a durable
:class:`~repro.runtime.store.CheckpointStore`.

The stride is the transaction boundary (the paper's Algorithms 1–2 make a
window advance atomic), so recovery is exact: on resume the supervisor
restores the last checkpoint, skips the ``stream_offset`` records the
checkpoint already accounts for, and replays only the partial stride that
was in flight when the process died. The resumed run's snapshots are
byte-identical to an uninterrupted run over the same stream — the property
``tests/test_runtime_recovery.py`` proves at every stride boundary on every
registered index backend.
"""

from __future__ import annotations

import itertools
import logging
from collections.abc import Iterable, Iterator

from repro.common.config import WindowSpec
from repro.common.errors import ConfigurationError
from repro.common.points import StreamPoint
from repro.common.snapshot import Clustering
from repro.core import checkpoint as core_checkpoint
from repro.core.checkpoint import CheckpointError
from repro.core.disc import DISC
from repro.core.events import StrideSummary
from repro.datasets.io import MalformedRecord
from repro.runtime.chaos import RuntimeHooks
from repro.runtime.invariants import check_state, rebuild
from repro.runtime.policies import DeadLetterSink, FaultPolicy, InputGuard
from repro.runtime.stats import RuntimeStats
from repro.runtime.store import CheckpointStore

logger = logging.getLogger("repro.runtime")

PAYLOAD_VERSION = 1


class Supervisor:
    """Checkpointing, fault-tolerant driver for a DISC streaming run.

    Args:
        eps, tau: DBSCAN thresholds.
        spec: window/stride sizes.
        store: a :class:`CheckpointStore`, a directory path to create one
            in, or ``None`` to run without durability.
        checkpoint_every: strides between checkpoints (>= 1).
        index: spatial-index backend *name* from the registry (or ``None``
            for the default). Instances are rejected when a store is
            configured — a checkpoint must be able to name its backend.
        multi_starter, epoch_probing: DISC ablation knobs.
        time_based: interpret ``spec`` as durations over timestamps.
        policy: input-fault policy (``strict`` / ``skip`` / ``clamp``).
        dead_letter: sink for rejected records (default: in-memory).
        stats: counters object to use; a fresh one is created when omitted.
        hooks: :class:`~repro.runtime.chaos.RuntimeHooks` for observation
            or fault injection.
        tracer: optional :class:`~repro.observability.trace.Tracer`; the
            supervised DISC emits one stride trace per advance, across fresh
            starts and checkpoint restores alike. Tracer state is *not*
            checkpointed — a resumed run's trace starts at stride 0 of the
            resumed process.
        check_invariants: after every stride, verify n_eps consistency,
            anchor validity and cid-forest acyclicity; on violation log a
            warning and degrade to a full re-cluster of the window instead
            of carrying corrupted state forward. Debug-mode: it makes every
            stride cost a full pass over the window.
    """

    def __init__(
        self,
        eps: float,
        tau: int,
        spec: WindowSpec,
        *,
        store: CheckpointStore | str | None = None,
        checkpoint_every: int = 16,
        index: str | None = None,
        multi_starter: bool = True,
        epoch_probing: bool = True,
        time_based: bool = False,
        policy: FaultPolicy | str = FaultPolicy.STRICT,
        dead_letter: DeadLetterSink | None = None,
        stats: RuntimeStats | None = None,
        hooks: RuntimeHooks | None = None,
        check_invariants: bool = False,
        tracer=None,
    ) -> None:
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if store is not None and index is not None and not isinstance(index, str):
            raise ConfigurationError(
                "a checkpointed run needs a registry index *name* (or None); "
                f"got {index!r} — instances cannot be restored from disk"
            )
        self.eps = eps
        self.tau = tau
        self.spec = spec
        self.store = (
            CheckpointStore(store) if isinstance(store, (str,)) or hasattr(store, "__fspath__")
            else store
        )
        self.checkpoint_every = checkpoint_every
        self.index = index
        self.multi_starter = multi_starter
        self.epoch_probing = epoch_probing
        self.time_based = time_based
        self.stats = stats if stats is not None else RuntimeStats()
        self.dead_letter = dead_letter if dead_letter is not None else DeadLetterSink()
        self.guard = InputGuard(policy, self.stats, self.dead_letter)
        self.hooks = hooks if hooks is not None else RuntimeHooks()
        self.check_invariants = check_invariants
        self.tracer = tracer

        self.clusterer: DISC | None = None
        self.stride = 0  # next stride index to process
        self._cursor = None  # WindowCursor once begin() has run
        self._since_checkpoint = 0

    # -------------------------------------------------------------- lifecycle

    def begin(self, *, resume: bool | str = False) -> int:
        """Initialise (or restore) the run; return the stream offset to skip.

        This is the push-style entry point: after ``begin`` the caller feeds
        raw stream items one at a time through :meth:`feed` and flushes the
        tail with :meth:`finish`. :meth:`run` is the pull-style wrapper over
        exactly these three calls, so both driving styles produce
        byte-identical stride sequences.

        Args:
            resume: ``False`` starts fresh; ``True`` restores the latest
                checkpoint (raising :class:`CheckpointError` when there is
                none); ``"auto"`` resumes when a checkpoint exists and
                starts fresh otherwise.

        Returns:
            The number of leading raw stream items the restored checkpoint
            already accounts for — the caller must skip (or not re-send)
            that prefix. ``0`` on a fresh start.
        """
        from repro.window.sliding import WindowCursor

        if resume:
            restored = self._try_restore(
                required=resume is not False and resume != "auto"
            )
        else:
            restored = None
        if restored is not None:
            self._cursor, stream_offset = restored
        else:
            self.clusterer = DISC(
                self.eps,
                self.tau,
                index=self.index,
                multi_starter=self.multi_starter,
                epoch_probing=self.epoch_probing,
                tracer=self.tracer,
            )
            self._cursor = WindowCursor(self.spec, self.time_based)
            self.stride = 0
            stream_offset = 0
        self._since_checkpoint = 0
        return stream_offset

    def feed(
        self, item: StreamPoint | MalformedRecord
    ) -> list[tuple[Clustering, StrideSummary]]:
        """Push one raw stream item; return the stride results it closed.

        Most items close no stride (empty list); an item that completes one
        or more slides returns one ``(snapshot, summary)`` pair per advance.
        Periodic checkpointing happens here, after the closing strides, so
        the push path checkpoints at exactly the same boundaries as
        :meth:`run`.
        """
        if self._cursor is None:
            raise ConfigurationError("call begin() before feed()")
        point = self.guard.admit(item)
        if point is None:
            return []
        slides = self._cursor.feed(point)
        results = [self._advance(di, do) for di, do in slides]
        if slides:
            self._since_checkpoint += len(slides)
            if self._since_checkpoint >= self.checkpoint_every:
                self._checkpoint(self._cursor)
                self._since_checkpoint = 0
        return results

    def finish(self) -> list[tuple[Clustering, StrideSummary]]:
        """Flush the trailing partial batch and take the closing checkpoint."""
        if self._cursor is None:
            raise ConfigurationError("call begin() before finish()")
        tail = self._cursor.finish()
        results = []
        if tail is not None:
            results.append(self._advance(*tail))
            self._since_checkpoint += 1
        if self.store is not None and self._since_checkpoint:
            self._checkpoint(self._cursor)
            self._since_checkpoint = 0
        return results

    def final_checkpoint(self):
        """Unconditionally persist the current run state; return the path.

        Unlike the periodic checkpoints inside :meth:`feed`, this captures
        the state *right now* — including a partially filled batch — so a
        serving layer can drain a session (stop admitting, flush its queue)
        and then make the drain durable. A run resumed from this checkpoint
        replays zero points: the stored ``stream_offset`` covers every item
        the guard has seen. No-op (returns ``None``) without a store or
        before any stream has been started.
        """
        if self.store is None or self._cursor is None or self.clusterer is None:
            return None
        path = self._checkpoint(self._cursor)
        self._since_checkpoint = 0
        return path

    def run(
        self,
        points: Iterable[StreamPoint | MalformedRecord],
        *,
        resume: bool | str = False,
    ) -> Iterator[tuple[Clustering, StrideSummary]]:
        """Drive the stream, yielding ``(snapshot, summary)`` per stride.

        Args:
            points: the raw stream *from the beginning* — on resume the
                supervisor skips the prefix its checkpoint already covers,
                so the caller re-supplies the same source and only the
                partial stride in flight at the crash is replayed.
            resume: ``False`` starts fresh; ``True`` restores the latest
                checkpoint (raising :class:`CheckpointError` when there is
                none); ``"auto"`` resumes when a checkpoint exists and
                starts fresh otherwise.
        """
        stream_offset = self.begin(resume=resume)
        if stream_offset:
            points = itertools.islice(iter(points), stream_offset, None)
        for item in points:
            yield from self.feed(item)
        yield from self.finish()

    def snapshot(self) -> Clustering:
        """Current clustering of the supervised run."""
        if self.clusterer is None:
            raise ConfigurationError("supervisor has not processed any stream yet")
        return self.clusterer.snapshot()

    # -------------------------------------------------------------- internals

    def _advance(
        self,
        delta_in: list[StreamPoint],
        delta_out: list[StreamPoint],
    ) -> tuple[Clustering, StrideSummary]:
        self.hooks.before_stride(self.stride)
        summary = self.clusterer.advance(delta_in, delta_out)
        if summary is None:  # pragma: no cover - DISC always returns one
            summary = StrideSummary(
                num_inserted=len(delta_in), num_deleted=len(delta_out)
            )
        self.stride += 1
        self.stats.strides += 1
        if self.check_invariants:
            self._verify_or_rebuild()
        self.hooks.after_stride(self.stride - 1, summary)
        return self.clusterer.snapshot(), summary

    def _verify_or_rebuild(self) -> None:
        violations = check_state(self.clusterer)
        if not violations:
            return
        self.stats.invariant_failures += 1
        self.stats.rebuilds += 1
        logger.warning(
            "stride %d: DISC state failed invariant checks (%s); "
            "degrading to a full re-cluster of the current window",
            self.stride - 1,
            "; ".join(violations),
        )
        self.clusterer = rebuild(self.clusterer)

    def _checkpoint(self, cursor):
        if self.store is None:
            return None
        payload = {
            "payload_version": PAYLOAD_VERSION,
            "stride": self.stride,
            "stream_offset": self.stats.points_seen,
            "time_based": self.time_based,
            "disc": core_checkpoint.to_checkpoint(self.clusterer),
            "cursor": cursor.export_state(),
            "guard": self.guard.export_state(),
            "stats": self.stats.as_dict(),
        }
        self.hooks.before_checkpoint(self.stride)
        path = self.store.save(self.stride, payload)
        self.stats.checkpoints_written += 1
        self.hooks.after_checkpoint(self.stride, path)
        return path

    def _try_restore(self, required: bool):
        """Restore from the latest checkpoint; return (cursor, offset) or None."""
        from repro.window.sliding import WindowCursor

        if self.store is None:
            raise ConfigurationError("cannot resume: no checkpoint store configured")
        try:
            stride, payload = self.store.latest()
        except CheckpointError:
            if required:
                raise
            return None
        version = payload.get("payload_version")
        if version != PAYLOAD_VERSION:
            raise CheckpointError(
                f"unsupported runtime checkpoint payload version {version!r}"
            )
        try:
            self.clusterer = core_checkpoint.from_checkpoint(payload["disc"])
            # The checkpoint does not carry tracer state; re-attach ours so
            # a resumed run keeps emitting.
            self.clusterer.tracer = self.tracer
            cursor = WindowCursor.from_state(payload["cursor"])
            self.guard.restore_state(payload["guard"])
            self.stats.restore(payload["stats"])
            stream_offset = int(payload["stream_offset"])
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed runtime checkpoint: {exc}") from exc
        self.stride = int(payload["stride"])
        if stride != self.stride:  # pragma: no cover - store/payload skew
            raise CheckpointError(
                f"checkpoint stride mismatch: file says {stride}, "
                f"payload says {self.stride}"
            )
        self.stats.resumes += 1
        self.stats.resumed_at_stride = self.stride
        logger.info(
            "resumed from checkpoint at stride %d (stream offset %d)",
            self.stride,
            stream_offset,
        )
        return cursor, stream_offset
