"""Turning a stream into per-stride window deltas.

Both window models of the paper are supported:

- **count-based**: ``window`` and ``stride`` are numbers of points. Every
  stride emits the next ``stride`` arrivals and expires the oldest points so
  the window never exceeds ``window`` points.
- **time-based**: ``window`` and ``stride`` are durations in the stream's
  timestamp unit. Every stride covers one ``stride``-long interval and
  expires points older than ``now - window``.

The clustering algorithms never see which model produced a delta — they just
receive ``(delta_in, delta_out)`` pairs (Section II-B: "the clustering
algorithm ... is not subject to how those parameters are measured").
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.common.config import WindowSpec
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint

Slide = tuple[list[StreamPoint], list[StreamPoint]]


class SlidingWindow:
    """Stateless factory of per-stride deltas for one window specification."""

    def __init__(self, spec: WindowSpec, time_based: bool = False) -> None:
        self.spec = spec
        self.time_based = time_based

    def slides(self, stream: Iterable[StreamPoint]) -> Iterator[Slide]:
        """Yield ``(delta_in, delta_out)`` per window advance.

        The first few slides have empty ``delta_out`` while the window fills.
        """
        if self.time_based:
            yield from self._time_slides(stream)
        else:
            yield from self._count_slides(stream)

    def _count_slides(self, stream: Iterable[StreamPoint]) -> Iterator[Slide]:
        window: deque[StreamPoint] = deque()
        batch: list[StreamPoint] = []
        stride = self.spec.stride
        capacity = self.spec.window
        for point in stream:
            batch.append(point)
            if len(batch) < stride:
                continue
            window.extend(batch)
            delta_out = []
            while len(window) > capacity:
                delta_out.append(window.popleft())
            yield batch, delta_out
            batch = []
        if batch:
            window.extend(batch)
            delta_out = []
            while len(window) > capacity:
                delta_out.append(window.popleft())
            yield batch, delta_out

    def _time_slides(self, stream: Iterable[StreamPoint]) -> Iterator[Slide]:
        window: deque[StreamPoint] = deque()
        stride = float(self.spec.stride)
        span = float(self.spec.window)
        batch: list[StreamPoint] = []
        boundary: float | None = None
        last_time: float | None = None

        def expire(now: float) -> list[StreamPoint]:
            cutoff = now - span
            expired = []
            while window and window[0].time <= cutoff:
                expired.append(window.popleft())
            return expired

        for point in stream:
            if last_time is not None and point.time < last_time:
                raise StreamOrderError(
                    f"timestamps out of order: {point.time} after {last_time}"
                )
            last_time = point.time
            if boundary is None:
                boundary = point.time + stride
            while point.time >= boundary:
                window.extend(batch)
                yield batch, expire(boundary)
                batch = []
                boundary += stride
            batch.append(point)
        if batch and boundary is not None:
            window.extend(batch)
            yield batch, expire(boundary)


def materialize_slides(
    points: Iterable[StreamPoint],
    spec: WindowSpec,
    time_based: bool = False,
) -> list[Slide]:
    """Precompute every slide of a finite stream.

    Benchmarks use this so all methods replay the *identical* sequence of
    deltas, and slide computation stays out of the measured path.
    """
    return list(SlidingWindow(spec, time_based).slides(points))
