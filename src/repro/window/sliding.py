"""Turning a stream into per-stride window deltas.

Both window models of the paper are supported:

- **count-based**: ``window`` and ``stride`` are numbers of points. Every
  stride emits the next ``stride`` arrivals and expires the oldest points so
  the window never exceeds ``window`` points.
- **time-based**: ``window`` and ``stride`` are durations in the stream's
  timestamp unit. Every stride covers one ``stride``-long interval and
  expires points older than ``now - window``.

The clustering algorithms never see which model produced a delta — they just
receive ``(delta_in, delta_out)`` pairs (Section II-B: "the clustering
algorithm ... is not subject to how those parameters are measured").

Two driving styles share one implementation. :class:`SlidingWindow` is the
pull-style generator most callers use; :class:`WindowCursor` is the
push-style, *checkpointable* form underneath it: feed points one at a time,
collect the slides each point closes, and export/restore the cursor state so
a resilient runtime (``repro.runtime``) can resume a stream mid-window after
a crash and reproduce the exact same slide sequence.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.common.config import WindowSpec
from repro.common.errors import StreamOrderError
from repro.common.points import StreamPoint

Slide = tuple[list[StreamPoint], list[StreamPoint]]


class WindowCursor:
    """Stateful, checkpointable slicer: one window advance at a time.

    Unlike :meth:`SlidingWindow.slides`, whose windowing state is trapped
    inside a generator frame, the cursor keeps it in plain attributes so it
    can be serialized between strides (:meth:`export_state`) and rebuilt
    later (:meth:`from_state`) with slide-for-slide identical continuation.

    Args:
        spec: window/stride sizes.
        time_based: interpret the spec as durations over point timestamps.
    """

    def __init__(self, spec: WindowSpec, time_based: bool = False) -> None:
        self.spec = spec
        self.time_based = time_based
        self._window: deque[StreamPoint] = deque()
        self._batch: list[StreamPoint] = []
        self._boundary: float | None = None
        self._last_time: float | None = None

    @property
    def watermark(self) -> float | None:
        """Largest timestamp fed so far (time-based streams only)."""
        return self._last_time

    @property
    def window_contents(self) -> list[StreamPoint]:
        """Points currently inside the window (excludes the pending batch)."""
        return list(self._window)

    @property
    def pending(self) -> list[StreamPoint]:
        """Points fed but not yet emitted in a slide."""
        return list(self._batch)

    def feed(self, point: StreamPoint) -> list[Slide]:
        """Accept one stream point; return the slides it closes (often [])."""
        if self.time_based:
            return self._feed_time(point)
        return self._feed_count(point)

    def feed_many(self, points: Iterable[StreamPoint]) -> list[Slide]:
        """Accept a batch of points; return every slide the batch closes.

        Equivalent to calling :meth:`feed` per point and concatenating, but
        the count-based model closes whole strides per append instead of
        re-testing the batch length on every point — the natural entry point
        for batched ingestion (``repro.serve`` offers arrive in batches).
        """
        if self.time_based:
            slides: list[Slide] = []
            for point in points:
                slides.extend(self._feed_time(point))
            return slides
        stride = self.spec.stride
        batch = self._batch
        slides = []
        for point in points:
            batch.append(point)
            if len(batch) >= stride:
                slides.append(self._close_count_batch())
                batch = self._batch  # _close_count_batch rebinds it
        return slides

    def _feed_count(self, point: StreamPoint) -> list[Slide]:
        self._batch.append(point)
        if len(self._batch) < self.spec.stride:
            return []
        return [self._close_count_batch()]

    def _close_count_batch(self) -> Slide:
        batch = self._batch
        window = self._window
        window.extend(batch)
        delta_out: list[StreamPoint] = []
        while len(window) > self.spec.window:
            delta_out.append(window.popleft())
        self._batch = []
        return batch, delta_out

    def _feed_time(self, point: StreamPoint) -> list[Slide]:
        if self._last_time is not None and point.time < self._last_time:
            raise StreamOrderError(
                f"point {point.pid} arrived out of order: its timestamp "
                f"{point.time} precedes the stream watermark {self._last_time}"
            )
        self._last_time = point.time
        if self._boundary is None:
            self._boundary = point.time + float(self.spec.stride)
        slides: list[Slide] = []
        while point.time >= self._boundary:
            batch = self._batch
            self._window.extend(batch)
            slides.append((batch, self._expire(self._boundary)))
            self._batch = []
            self._boundary += float(self.spec.stride)
        self._batch.append(point)
        return slides

    def _expire(self, now: float) -> list[StreamPoint]:
        cutoff = now - float(self.spec.window)
        window = self._window
        expired: list[StreamPoint] = []
        while window and window[0].time <= cutoff:
            expired.append(window.popleft())
        return expired

    def finish(self) -> Slide | None:
        """Flush the trailing partial batch at end of stream, if any."""
        if not self._batch:
            return None
        if self.time_based:
            if self._boundary is None:
                return None
            batch = self._batch
            self._window.extend(batch)
            self._batch = []
            return batch, self._expire(self._boundary)
        return self._close_count_batch()

    # ------------------------------------------------------- state round-trip

    def export_state(self) -> dict:
        """JSON-friendly snapshot of the windowing state between strides."""
        pack = lambda p: [p.pid, list(p.coords), p.time]  # noqa: E731
        return {
            "window": [pack(p) for p in self._window],
            "batch": [pack(p) for p in self._batch],
            "boundary": self._boundary,
            "last_time": self._last_time,
            "time_based": self.time_based,
            "spec": [self.spec.window, self.spec.stride],
        }

    @classmethod
    def from_state(cls, state: dict) -> "WindowCursor":
        """Rebuild a cursor from :meth:`export_state` output."""
        spec = WindowSpec(window=state["spec"][0], stride=state["spec"][1])
        cursor = cls(spec, bool(state["time_based"]))
        unpack = lambda row: StreamPoint(  # noqa: E731
            int(row[0]), tuple(float(c) for c in row[1]), float(row[2])
        )
        cursor._window.extend(unpack(row) for row in state["window"])
        cursor._batch = [unpack(row) for row in state["batch"]]
        cursor._boundary = (
            None if state["boundary"] is None else float(state["boundary"])
        )
        cursor._last_time = (
            None if state["last_time"] is None else float(state["last_time"])
        )
        return cursor


class SlidingWindow:
    """Stateless factory of per-stride deltas for one window specification."""

    def __init__(self, spec: WindowSpec, time_based: bool = False) -> None:
        self.spec = spec
        self.time_based = time_based

    def slides(self, stream: Iterable[StreamPoint]) -> Iterator[Slide]:
        """Yield ``(delta_in, delta_out)`` per window advance.

        The first few slides have empty ``delta_out`` while the window fills.
        """
        cursor = WindowCursor(self.spec, self.time_based)
        for point in stream:
            yield from cursor.feed(point)
        tail = cursor.finish()
        if tail is not None:
            yield tail


def materialize_slides(
    points: Iterable[StreamPoint],
    spec: WindowSpec,
    time_based: bool = False,
) -> list[Slide]:
    """Precompute every slide of a finite stream.

    Benchmarks use this so all methods replay the *identical* sequence of
    deltas, and slide computation stays out of the measured path.
    """
    cursor = WindowCursor(spec, time_based)
    slides = cursor.feed_many(points)
    tail = cursor.finish()
    if tail is not None:
        slides.append(tail)
    return slides
