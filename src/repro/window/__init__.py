"""Sliding-window machinery (paper Section II-B).

:class:`~repro.window.sliding.SlidingWindow` turns a point stream into
per-stride deltas under either the count-based or the time-based model;
:mod:`repro.window.driver` replays those deltas into any stream clusterer
while measuring per-stride latency.
"""

from repro.window.driver import (
    DriveResult,
    StrideMeasurement,
    drive,
    drive_supervised,
    replay,
)
from repro.window.sliding import SlidingWindow, WindowCursor

__all__ = [
    "DriveResult",
    "SlidingWindow",
    "StrideMeasurement",
    "WindowCursor",
    "drive",
    "drive_supervised",
    "replay",
]
