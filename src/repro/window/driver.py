"""Replaying window slides into a clusterer with per-stride timing.

This is the measurement harness behind every elapsed-time figure: it feeds
identical deltas to each method and records wall-clock per stride, mirroring
the paper's "average elapsed time taken to update clusters when the sliding
window advanced by a single stride".
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from statistics import mean

from repro.common.config import WindowSpec
from repro.common.points import StreamPoint
from repro.core.events import StrideSummary
from repro.window.sliding import Slide, SlidingWindow


@dataclass
class StrideMeasurement:
    """Timing and outcome of one window advance."""

    index: int
    elapsed: float  # seconds spent inside clusterer.advance
    window_size: int  # points in the window after the advance
    summary: StrideSummary


@dataclass
class DriveResult:
    """All per-stride measurements of one run."""

    method: str
    measurements: list[StrideMeasurement] = field(default_factory=list)

    def steady(self, warmup: int = 0) -> list[StrideMeasurement]:
        """Measurements after dropping the first ``warmup`` strides.

        The paper measures steady-state behaviour; the window-filling prefix
        is usually excluded by passing the number of strides per window.
        """
        return self.measurements[warmup:]

    def mean_elapsed(self, warmup: int = 0) -> float:
        steady = self.steady(warmup)
        if not steady:
            return 0.0
        return mean(m.elapsed for m in steady)

    def total_elapsed(self) -> float:
        return sum(m.elapsed for m in self.measurements)


def replay(
    clusterer,
    slides: Iterable[Slide],
    *,
    on_stride: Callable[[StrideMeasurement, object], None] | None = None,
    max_strides: int | None = None,
) -> DriveResult:
    """Feed precomputed slides into ``clusterer``, timing each advance.

    Args:
        clusterer: any object with ``advance(delta_in, delta_out)`` and a
            ``name`` attribute.
        slides: the ``(delta_in, delta_out)`` pairs to replay.
        on_stride: optional observer called with each measurement and the
            clusterer (e.g. to take quality snapshots mid-run).
        max_strides: stop after this many slides.

    Returns:
        A :class:`DriveResult` with one measurement per slide.
    """
    result = DriveResult(method=getattr(clusterer, "name", type(clusterer).__name__))
    window_size = 0
    for i, (delta_in, delta_out) in enumerate(slides):
        if max_strides is not None and i >= max_strides:
            break
        start = time.perf_counter()
        summary = clusterer.advance(delta_in, delta_out)
        elapsed = time.perf_counter() - start
        window_size += len(delta_in) - len(delta_out)
        if summary is None:
            summary = StrideSummary(
                num_inserted=len(delta_in), num_deleted=len(delta_out)
            )
        measurement = StrideMeasurement(i, elapsed, window_size, summary)
        result.measurements.append(measurement)
        if on_stride is not None:
            on_stride(measurement, clusterer)
    return result


def drive(
    clusterer,
    points: Iterable[StreamPoint],
    spec: WindowSpec,
    *,
    time_based: bool = False,
    on_stride: Callable[[StrideMeasurement, object], None] | None = None,
    max_strides: int | None = None,
) -> DriveResult:
    """Convenience wrapper: slice ``points`` by ``spec`` and replay."""
    slides = SlidingWindow(spec, time_based).slides(points)
    return replay(
        clusterer, slides, on_stride=on_stride, max_strides=max_strides
    )


def drive_supervised(
    supervisor,
    points: Iterable[StreamPoint],
    *,
    resume: bool | str = False,
    on_stride: Callable[[StrideMeasurement, object], None] | None = None,
    max_strides: int | None = None,
) -> DriveResult:
    """Replay a stream through a resilient runtime, timing each stride.

    Like :func:`drive`, but the windowing, fault policies and checkpointing
    all belong to the :class:`~repro.runtime.supervisor.Supervisor`, so the
    measured per-stride time includes the runtime's overhead (input
    guarding, checkpoint writes when due) — the number an operator actually
    experiences.

    Args:
        supervisor: a configured :class:`~repro.runtime.supervisor.Supervisor`.
        points: the raw stream, from the beginning (see ``Supervisor.run``).
        resume: forwarded to ``Supervisor.run``.
        on_stride: optional observer, called with each measurement and the
            supervised clusterer.
        max_strides: stop after this many strides.
    """
    result = DriveResult(method="DISC/supervised")
    run = supervisor.run(points, resume=resume)
    index = 0
    while True:
        start = time.perf_counter()
        try:
            snapshot, summary = next(run)
        except StopIteration:
            break
        elapsed = time.perf_counter() - start
        measurement = StrideMeasurement(
            index, elapsed, snapshot.num_points, summary
        )
        result.measurements.append(measurement)
        if on_stride is not None:
            on_stride(measurement, supervisor.clusterer)
        index += 1
        if max_strides is not None and index >= max_strides:
            run.close()
            break
    return result
