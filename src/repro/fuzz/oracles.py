"""The oracle matrix: every way a generated stream can prove us wrong.

Each oracle is a pure function ``(scenario, backend) -> [OracleFailure]``
running the scenario through one registry backend and checking one
correctness contract:

- ``equivalence`` — DISC's incremental result per stride is equivalent to a
  fresh DBSCAN re-cluster of the window (the paper's Theorem 1, via
  :func:`repro.metrics.compare.assert_equivalent`);
- ``permutation`` — reordering points that share a timestamp (within one
  stride block, for count-based windows) never changes the clustering;
- ``classify`` — ad-hoc classification answers are invariant under the
  iteration order of the core set (the tie-break contract of
  :meth:`repro.serve.session.SessionView.classify`);
- ``checkpoint`` — kill the supervised run at sampled fault points
  (:func:`repro.runtime.chaos.enumerate_fault_points`), resume from the
  store, and every observable stride — and the final state — is
  byte-identical to the uninterrupted run;
- ``serve`` — an in-process :class:`~repro.serve.service.ClusterService`
  session over the same stream matches the offline run: final view,
  ``AS_OF(stride)`` at every retained stride, and ``AS_OF(time=t)``
  resolving by the at-or-before contract (exact stamps, duplicate stamps,
  midpoints, pre-floor errors).

Oracles never raise on a finding — they return failures so the harness can
shrink and archive them. Determinism: any sampling inside an oracle is
seeded from the scenario's own seed.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.baselines.dbscan import SlidingDBSCAN
from repro.common.config import WindowSpec
from repro.common.points import StreamPoint
from repro.common.snapshot import Category, Clustering
from repro.core.disc import DISC
from repro.fuzz.scenarios import Scenario
from repro.metrics.compare import EquivalenceError, assert_equivalent
from repro.runtime.chaos import ChaosKill, ChaosMonkey, enumerate_fault_points
from repro.runtime.supervisor import Supervisor
from repro.serve.session import SessionView
from repro.window.sliding import materialize_slides

#: Checkpoint cadence used by the checkpoint and serve oracles — small, so
#: short scenarios still cross several checkpoint boundaries.
CHECKPOINT_EVERY = 2
#: Archive cadence of the serve oracle's tenant (sparse, so most AS_OF
#: answers exercise delta replay rather than a direct snapshot load).
ARCHIVE_EVERY = 3
#: Fault points sampled per scenario by the checkpoint oracle.
MAX_FAULT_POINTS = 6
#: Independent reshuffles tried by the permutation oracle.
PERMUTATION_ROUNDS = 2
#: Distinct stamps probed by the serve oracle's time-travel checks.
MAX_TIME_PROBES = 12


@dataclass
class OracleFailure:
    """One refuted check: which oracle, where, and what went wrong."""

    oracle: str
    backend: str
    stride: int | None
    detail: str

    def describe(self) -> str:
        where = "" if self.stride is None else f" stride {self.stride}"
        return f"[{self.oracle}/{self.backend}{where}] {self.detail}"


def _spec(scenario: Scenario) -> WindowSpec:
    return WindowSpec(window=scenario.window, stride=scenario.stride)


def _membership(clustering: Clustering) -> dict[int, tuple[int, str]]:
    """Canonical per-point view: pid -> (label, category), noise as -1."""
    return {
        pid: (clustering.label_of(pid), cat.value)
        for pid, cat in clustering.categories.items()
    }


def _canon(clustering: Clustering) -> tuple:
    """Exact (not just equivalent) form, for byte-identity checks."""
    return (
        tuple(sorted(clustering.labels.items())),
        tuple(sorted((pid, cat.value) for pid, cat in clustering.categories.items())),
    )


def _diff(a: dict, b: dict, limit: int = 4) -> str:
    keys = sorted(set(a) | set(b))
    deltas = [
        f"{key}: {a.get(key)!r} vs {b.get(key)!r}"
        for key in keys
        if a.get(key) != b.get(key)
    ]
    extra = f" (+{len(deltas) - limit} more)" if len(deltas) > limit else ""
    return "; ".join(deltas[:limit]) + extra


# ------------------------------------------------------------- equivalence


def oracle_equivalence(scenario: Scenario, backend: str) -> list[OracleFailure]:
    """DISC per stride ≡ fresh DBSCAN re-cluster of the same window."""
    failures: list[OracleFailure] = []
    disc = DISC(scenario.eps, scenario.tau, index=backend)
    reference = SlidingDBSCAN(scenario.eps, scenario.tau, index=backend)
    coords: dict[int, tuple[float, ...]] = {}
    slides = materialize_slides(scenario.points, _spec(scenario), scenario.time_based)
    for stride, (delta_in, delta_out) in enumerate(slides):
        disc.advance(delta_in, delta_out)
        reference.advance(delta_in, delta_out)
        for point in delta_out:
            coords.pop(point.pid, None)
        for point in delta_in:
            coords[point.pid] = tuple(point.coords)
        try:
            assert_equivalent(
                disc.snapshot(), reference.snapshot(), coords, disc.params
            )
        except EquivalenceError as exc:
            failures.append(
                OracleFailure("equivalence", backend, stride, str(exc))
            )
            break  # downstream strides inherit the divergence
    return failures


# ------------------------------------------------------------- permutation


def _tie_runs(scenario: Scenario) -> list[list[int]]:
    """Index runs that may be legally reordered.

    Points sharing a timestamp are indistinguishable to a time-based
    window. Under a count-based window a point's arrival position also
    decides window membership, so a run must not straddle any position
    where some stride's window begins or ends. With ``window`` a multiple
    of ``stride`` those cuts are the stride boundaries — plus ``N -
    window``, the start of the final window when the stream ends on a
    partial batch (``finish`` then expires a partial prefix of the oldest
    block, so order inside that block is load-bearing).
    """
    tail_cut = len(scenario.points) - scenario.window
    runs: list[list[int]] = []
    current: list[int] = []
    for i, point in enumerate(scenario.points):
        same_time = current and scenario.points[current[-1]].time == point.time
        same_block = scenario.time_based or (
            current
            and current[-1] // scenario.stride == i // scenario.stride
            and (current[-1] < tail_cut) == (i < tail_cut)
        )
        if same_time and same_block:
            current.append(i)
        else:
            if len(current) > 1:
                runs.append(current)
            current = [i]
    if len(current) > 1:
        runs.append(current)
    return runs


def oracle_permutation(scenario: Scenario, backend: str) -> list[OracleFailure]:
    """Shuffling within-timestamp runs never changes any stride's result."""
    runs = _tie_runs(scenario)
    if not runs:
        return []
    spec = _spec(scenario)
    baseline: list[Clustering] = []
    coords_per_stride: list[dict[int, tuple[float, ...]]] = []
    disc = DISC(scenario.eps, scenario.tau, index=backend)
    coords: dict[int, tuple[float, ...]] = {}
    for delta_in, delta_out in materialize_slides(
        scenario.points, spec, scenario.time_based
    ):
        disc.advance(delta_in, delta_out)
        for point in delta_out:
            coords.pop(point.pid, None)
        for point in delta_in:
            coords[point.pid] = tuple(point.coords)
        baseline.append(disc.snapshot())
        coords_per_stride.append(dict(coords))

    rng = random.Random(scenario.seed ^ 0x5EED)
    failures: list[OracleFailure] = []
    for round_no in range(PERMUTATION_ROUNDS):
        order = list(range(len(scenario.points)))
        for run in runs:
            shuffled = list(run)
            rng.shuffle(shuffled)
            for slot, src in zip(run, shuffled):
                order[slot] = src
        permuted = [scenario.points[i] for i in order]
        other = DISC(scenario.eps, scenario.tau, index=backend)
        for stride, (delta_in, delta_out) in enumerate(
            materialize_slides(permuted, spec, scenario.time_based)
        ):
            other.advance(delta_in, delta_out)
            if stride >= len(baseline):
                failures.append(
                    OracleFailure(
                        "permutation",
                        backend,
                        stride,
                        f"round {round_no}: permuted stream closed stride "
                        f"{stride}, baseline only has {len(baseline)}",
                    )
                )
                return failures
            try:
                assert_equivalent(
                    baseline[stride],
                    other.snapshot(),
                    coords_per_stride[stride],
                    other.params,
                )
            except EquivalenceError as exc:
                failures.append(
                    OracleFailure(
                        "permutation",
                        backend,
                        stride,
                        f"round {round_no}: {exc}",
                    )
                )
                return failures
    return failures


# --------------------------------------------------------------- classify


def oracle_classify(scenario: Scenario, backend: str) -> list[OracleFailure]:
    """Ad-hoc classification is invariant to the core set's iteration order."""
    if not scenario.probes:
        return []
    disc = DISC(scenario.eps, scenario.tau, index=backend)
    coords: dict[int, tuple[float, ...]] = {}
    rng = random.Random(scenario.seed ^ 0xC1A55)
    failures: list[OracleFailure] = []
    for stride, (delta_in, delta_out) in enumerate(
        materialize_slides(scenario.points, _spec(scenario), scenario.time_based)
    ):
        disc.advance(delta_in, delta_out)
        for point in delta_out:
            coords.pop(point.pid, None)
        for point in delta_in:
            coords[point.pid] = tuple(point.coords)
        clustering = disc.snapshot()
        cores = tuple(
            (pid, coords[pid], clustering.label_of(pid))
            for pid, cat in clustering.categories.items()
            if cat is Category.CORE
        )
        if len(cores) < 2:
            continue
        shuffled = list(cores)
        rng.shuffle(shuffled)
        orders = (cores, tuple(reversed(cores)), tuple(shuffled))
        views = [
            SessionView(stride, clustering, scenario.eps, order)
            for order in orders
        ]
        for probe in scenario.probes:
            answers = [view.classify(probe) for view in views]
            if any(answer != answers[0] for answer in answers[1:]):
                failures.append(
                    OracleFailure(
                        "classify",
                        backend,
                        stride,
                        f"probe {probe}: core-order-dependent answer "
                        f"({_diff(answers[0], next(a for a in answers[1:] if a != answers[0]))})",
                    )
                )
                return failures
    return failures


# -------------------------------------------------------------- checkpoint


def _drive(
    supervisor: Supervisor,
    points: list[StreamPoint],
    *,
    resume: bool | str = False,
    into: dict[int, tuple] | None = None,
) -> dict[int, tuple]:
    """Push the stream through; return ``{stride index: exact snapshot}``.

    A :class:`ChaosKill` mid-feed propagates — and loses that feed call's
    strides, exactly as a real crash would — but everything recorded before
    it survives in ``into`` when the caller passed one.
    """
    recorded: dict[int, tuple] = {} if into is None else into
    offset = supervisor.begin(resume=resume)
    for item in points[offset:]:
        base = supervisor.stride
        for i, (snapshot, _) in enumerate(supervisor.feed(item)):
            recorded[base + i] = _canon(snapshot)
    base = supervisor.stride
    for i, (snapshot, _) in enumerate(supervisor.finish()):
        recorded[base + i] = _canon(snapshot)
    return recorded


def oracle_checkpoint(scenario: Scenario, backend: str) -> list[OracleFailure]:
    """Kill/resume at sampled fault points reproduces the uninterrupted run."""
    failures: list[OracleFailure] = []

    def supervisor(store, hooks=None):
        return Supervisor(
            scenario.eps,
            scenario.tau,
            _spec(scenario),
            store=store,
            checkpoint_every=CHECKPOINT_EVERY,
            index=backend,
            time_based=scenario.time_based,
            hooks=hooks,
        )

    with tempfile.TemporaryDirectory(prefix="fuzz-ckpt-") as tmp:
        baseline = _drive(supervisor(str(Path(tmp) / "base")), scenario.points)
    if not baseline:
        return []
    n_strides = max(baseline) + 1
    faults = enumerate_fault_points(n_strides, CHECKPOINT_EVERY)
    rng = random.Random(scenario.seed ^ 0xFA17)
    if len(faults) > MAX_FAULT_POINTS:
        faults = sorted(
            rng.sample(faults, MAX_FAULT_POINTS),
            key=lambda f: sorted(f.items()),
        )
    for fault in faults:
        label = ", ".join(f"{k}={v}" for k, v in sorted(fault.items()))
        with tempfile.TemporaryDirectory(prefix="fuzz-ckpt-") as tmp:
            recorded: dict[int, tuple] = {}
            survivor = supervisor(tmp, hooks=ChaosMonkey(**fault))
            try:
                # The monkey may never fire (fault site past the run's end);
                # the uninterrupted result must still match the baseline.
                _drive(survivor, scenario.points, into=recorded)
            except ChaosKill:
                survivor = supervisor(tmp)
                _drive(survivor, scenario.points, resume="auto", into=recorded)
            bad = [
                stride
                for stride, canon in recorded.items()
                if baseline.get(stride) != canon
            ]
            if bad:
                failures.append(
                    OracleFailure(
                        "checkpoint",
                        backend,
                        min(bad),
                        f"{label}: resumed stride diverges from baseline",
                    )
                )
                continue
            # Strides closed inside the crashing feed call are lost to both
            # runs (the checkpoint already covers them), so the end-state
            # contract is checked on the survivor's live snapshot.
            if _canon(survivor.snapshot()) != baseline[n_strides - 1]:
                failures.append(
                    OracleFailure(
                        "checkpoint",
                        backend,
                        n_strides - 1,
                        f"{label}: final resumed state diverges from the "
                        "uninterrupted run",
                    )
                )
    return failures


# ------------------------------------------------------------------- serve


def oracle_serve(scenario: Scenario, backend: str) -> list[OracleFailure]:
    """A served tenant over the same stream matches the offline run.

    Checks the final published view, ``AS_OF(k)`` for every retained
    stride, and ``AS_OF(time=t)`` against an independently computed
    at-or-before resolution over the journal stamps.
    """
    return asyncio.run(_serve_check(scenario, backend))


async def _serve_check(scenario: Scenario, backend: str) -> list[OracleFailure]:
    from repro.api import cluster_stream
    from repro.serve.config import SessionConfig
    from repro.serve.protocol import ServeError
    from repro.serve.service import ClusterService

    offline = [
        _membership(snapshot)
        for snapshot, _ in cluster_stream(
            scenario.points,
            _spec(scenario),
            scenario.eps,
            scenario.tau,
            time_based=scenario.time_based,
            index=backend,
        )
    ]
    failures: list[OracleFailure] = []
    with tempfile.TemporaryDirectory(prefix="fuzz-serve-") as tmp:
        service = ClusterService(data_dir=tmp)
        config = SessionConfig(
            eps=scenario.eps,
            tau=scenario.tau,
            window=scenario.window,
            stride=scenario.stride,
            time_based=scenario.time_based,
            index=backend,
            checkpoint_every=CHECKPOINT_EVERY,
            journal=True,
            archive_every=ARCHIVE_EVERY,
        )
        session = service.open("fuzz", config)
        try:
            await session.offer(scenario.points)
            await session.drain(flush_tail=True)
            if session.failed is not None:
                failures.append(
                    OracleFailure(
                        "serve", backend, None, f"session failed: {session.failed}"
                    )
                )
                return failures

            view = session.view
            if view.stride != len(offline) - 1:
                failures.append(
                    OracleFailure(
                        "serve",
                        backend,
                        view.stride,
                        f"served {view.stride + 1} strides, offline closed "
                        f"{len(offline)}",
                    )
                )
                return failures
            if offline and _membership(view.clustering) != offline[-1]:
                failures.append(
                    OracleFailure(
                        "serve",
                        backend,
                        view.stride,
                        "final served view != offline final state: "
                        + _diff(_membership(view.clustering), offline[-1]),
                    )
                )

            # AS_OF(stride) at every retained stride.
            for stride in range(len(offline)):
                try:
                    payload = session.as_of(stride=stride)
                except ServeError as exc:
                    failures.append(
                        OracleFailure(
                            "serve", backend, stride, f"AS_OF({stride}): {exc}"
                        )
                    )
                    break
                got = _payload_membership(payload)
                if got != offline[stride]:
                    failures.append(
                        OracleFailure(
                            "serve",
                            backend,
                            stride,
                            f"AS_OF({stride}) != offline state: "
                            + _diff(got, offline[stride]),
                        )
                    )
                    break

            failures.extend(_time_travel_check(scenario, backend, session, offline))
        finally:
            await service.shutdown()
    return failures


def _payload_membership(payload: dict) -> dict[int, tuple[int, str]]:
    """AS_OF wire payload -> the canonical per-point map."""
    return {
        int(pid): (payload["labels"][pid], payload["categories"][pid])
        for pid in payload["categories"]
    }


def _time_travel_check(
    scenario: Scenario, backend: str, session, offline: list[dict]
) -> list[OracleFailure]:
    """AS_OF(time=t) resolves by the at-or-before contract, independently."""
    from repro.serve.protocol import ServeError

    records, _head, _floor = session.events(0)
    stamps = [
        (record["stride"], record["time"])
        for record in records
        if record.get("time") is not None
    ]
    if not stamps:
        return []

    def expected_stride(t: float) -> int | None:
        best = None
        for stride, stamp in stamps:
            if stamp <= t:
                best = stride
        return best

    distinct = sorted({stamp for _, stamp in stamps})
    if len(distinct) > MAX_TIME_PROBES:
        rng = random.Random(scenario.seed ^ 0x7153)
        distinct = sorted(rng.sample(distinct, MAX_TIME_PROBES))
    queries = list(distinct)
    queries.extend(
        (a + b) / 2.0 for a, b in zip(distinct, distinct[1:]) if a != b
    )
    failures: list[OracleFailure] = []
    for t in queries:
        want = expected_stride(t)
        try:
            payload = session.as_of(time=t)
        except ServeError as exc:
            failures.append(
                OracleFailure(
                    "serve",
                    backend,
                    want,
                    f"AS_OF(time={t}) raised {exc} but stride {want} is "
                    "at-or-before it",
                )
            )
            return failures
        if payload["stride"] != want:
            failures.append(
                OracleFailure(
                    "serve",
                    backend,
                    want,
                    f"AS_OF(time={t}) resolved to stride {payload['stride']}, "
                    f"at-or-before contract says {want}",
                )
            )
            return failures
        got = _payload_membership(payload)
        if want is not None and want < len(offline) and got != offline[want]:
            failures.append(
                OracleFailure(
                    "serve",
                    backend,
                    want,
                    f"AS_OF(time={t}) state != offline stride {want}: "
                    + _diff(got, offline[want]),
                )
            )
            return failures
    # Pre-floor time must be a clean error, not a wrong answer.
    before = min(stamp for _, stamp in stamps) - 1.0
    try:
        payload = session.as_of(time=before)
    except ServeError:
        pass
    else:
        failures.append(
            OracleFailure(
                "serve",
                backend,
                None,
                f"AS_OF(time={before}) predates every stamp but answered "
                f"stride {payload['stride']}",
            )
        )
    return failures


#: Oracle registry: name -> callable(scenario, backend) -> [OracleFailure].
ORACLES: dict[str, Callable[[Scenario, str], list[OracleFailure]]] = {
    "equivalence": oracle_equivalence,
    "permutation": oracle_permutation,
    "classify": oracle_classify,
    "checkpoint": oracle_checkpoint,
    "serve": oracle_serve,
}
