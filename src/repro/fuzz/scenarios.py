"""Seeded generator of adversarial streams, and the case-file codec.

A :class:`Scenario` is one self-contained fuzz input: clustering
parameters, a window specification, the stream itself, and a handful of
ad-hoc *probe* coordinates for the classify oracle. Scenarios come from
:func:`generate_scenario`, which composes the stream features where past
PRs actually found their bugs:

- **timestamp ties** — runs of points sharing one stamp (permutation
  invariance, duplicate journal stamps for time travel);
- **exact-eps geometry** — pairs and chains spaced at exactly ``eps``,
  probing the ``<=`` boundary every backend must agree on;
- **burst / eviction cliffs** — a window-sized burst at one stamp that
  later expires in a single stride;
- **empty and singleton strides** — time gaps longer than the stride (one
  arriving point then closes *several* strides at once, all journaled
  under the same stamp);
- **pid reuse after expiry** — an id returns at new coordinates once its
  previous life has provably left the window;
- **merge/split chains** — bridges between blobs that arrive and expire,
  driving the evolution-event machinery.

Everything is drawn from a single ``random.Random(seed)``; coordinates
snap to a 0.25 grid so distances of symmetric constructions are *exact*
in binary floating point (an equidistant probe really is equidistant).

The case-file format is JSONL: a header object (parameters, the failure
that produced the case) followed by one ``{"pid", "coords", "time"}``
object per stream point — the same point schema ``repro.datasets.io``
reads, so a case stream is easy to eyeball with ``jq``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.common.errors import ReproError
from repro.common.points import StreamPoint

CASE_FORMAT = 1

#: Feature names the generator can compose (header metadata + test hooks).
FEATURES = (
    "blob",
    "eps_chain",
    "bridge",
    "burst",
    "gap",
    "singleton",
    "pid_reuse",
)


class CaseError(ReproError):
    """A case file could not be parsed or round-tripped."""


@dataclass
class Scenario:
    """One fuzz input: parameters, stream, and classify probes."""

    name: str
    seed: int
    eps: float
    tau: int
    window: int
    stride: int
    time_based: bool
    points: list[StreamPoint] = field(default_factory=list)
    probes: list[tuple[float, ...]] = field(default_factory=list)
    features: list[str] = field(default_factory=list)

    def with_points(self, points: list[StreamPoint]) -> "Scenario":
        """A copy carrying ``points`` (the shrinker's edit primitive)."""
        return replace(self, points=list(points))

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.points)} points, "
            f"eps={self.eps} tau={self.tau} "
            f"window={self.window}/{self.stride}"
            f"{' time-based' if self.time_based else ''}, "
            f"features={'+'.join(self.features) or 'none'}"
        )


def _snap(value: float) -> float:
    """Snap to the 0.25 grid — exact in binary floating point."""
    return round(value * 4) / 4.0


class _StreamBuilder:
    """Tracks pids, timestamps, and provable expiry for safe composition."""

    def __init__(self, rng: random.Random, window: int, stride: int, time_based: bool):
        self.rng = rng
        self.window = window
        self.stride = stride
        self.time_based = time_based
        self.points: list[StreamPoint] = []
        self.now = 0.0
        self._next_pid = 0
        self._births: list[tuple[int, float, int]] = []  # (pid, time, index)

    def tick(self, steps: float = 1.0) -> None:
        self.now += steps

    def emit(self, coords: tuple[float, ...], *, tie: bool = False, reuse_pid: int | None = None) -> int:
        """Append one point; ``tie`` repeats the current stamp."""
        if not tie:
            self.tick()
        pid = reuse_pid if reuse_pid is not None else self._next_pid
        if reuse_pid is None:
            self._next_pid += 1
        self.points.append(StreamPoint(pid, tuple(coords), self.now))
        self._births.append((pid, self.now, len(self.points) - 1))
        return pid

    def expired_pid(self) -> int | None:
        """A pid provably out of the window (and out of any pending batch).

        Conservative on both window models: count-based, the point must be
        ``window + 2*stride`` arrivals in the past; time-based, its stamp
        must trail ``now`` by more than ``window + 2*stride``.
        """
        margin = self.window + 2 * self.stride
        live = {p.pid for p in self.points[-margin:]} if not self.time_based else None
        for pid, born, index in self._births:
            if self.time_based:
                if self.now - born > margin:
                    newest = max(b for q, b, _ in self._births if q == pid)
                    if self.now - newest > margin:
                        return pid
            else:
                if len(self.points) - index > margin and pid not in live:
                    return pid
        return None


def generate_scenario(seed: int, *, name: str | None = None) -> Scenario:
    """Compose one adversarial scenario, fully determined by ``seed``."""
    rng = random.Random(seed)
    eps = rng.choice((0.5, 0.75, 1.0))
    tau = rng.choice((2, 3, 3, 4))
    stride = rng.choice((3, 4, 5, 6))
    window = stride * rng.choice((3, 4, 5))
    time_based = rng.random() < 0.5
    builder = _StreamBuilder(rng, window, stride, time_based)
    features: list[str] = []
    probes: list[tuple[float, ...]] = []

    # Cluster centres live on a coarse grid, far enough apart that blobs
    # only interact through the bridges we build on purpose.
    centres = [
        (_snap(x), _snap(y))
        for x, y in rng.sample(
            [(cx * 8.0, cy * 8.0) for cx in range(1, 5) for cy in range(1, 5)], 4
        )
    ]

    def blob(centre, count, tie_run=0):
        for i in range(count):
            dx = _snap(rng.uniform(-eps / 2, eps / 2))
            dy = _snap(rng.uniform(-eps / 2, eps / 2))
            builder.emit((centre[0] + dx, centre[1] + dy), tie=(0 < i <= tie_run))

    episodes = rng.randint(8, 14)
    for _ in range(episodes):
        feature = rng.choice(FEATURES)
        if feature == "blob":
            centre = rng.choice(centres)
            blob(centre, rng.randint(tau + 1, tau + 4), tie_run=rng.randint(0, 3))
        elif feature == "eps_chain":
            # Points spaced at *exactly* eps: every hop sits on the <= eps
            # boundary, so core counts flip if any backend is off by one ulp.
            centre = rng.choice(centres)
            length = rng.randint(2, tau + 2)
            for i in range(length):
                builder.emit(
                    (centre[0] + i * eps, centre[1]), tie=rng.random() < 0.4
                )
            probes.append((centre[0] + length * eps, centre[1]))
        elif feature == "bridge":
            a, b = rng.sample(centres, 2)
            hops = max(
                2, int(max(abs(b[0] - a[0]), abs(b[1] - a[1])) / max(eps / 2, 0.25))
            )
            for i in range(1, hops):
                t = i / hops
                builder.emit(
                    (
                        _snap(a[0] + (b[0] - a[0]) * t),
                        _snap(a[1] + (b[1] - a[1]) * t),
                    ),
                    tie=rng.random() < 0.3,
                )
        elif feature == "burst":
            centre = rng.choice(centres)
            blob(centre, builder.window // 2, tie_run=builder.window // 2)
        elif feature == "gap":
            builder.tick(builder.window + 2 * builder.stride)
        elif feature == "singleton":
            builder.tick(builder.stride + 1)
            builder.emit((_snap(rng.uniform(30, 38)), _snap(rng.uniform(30, 38))))
            builder.tick(builder.stride + 1)
        elif feature == "pid_reuse":
            pid = builder.expired_pid()
            centre = rng.choice(centres)
            builder.emit(
                (centre[0] + _snap(rng.uniform(-1, 1)), centre[1]),
                reuse_pid=pid,
            )
            if pid is None:
                continue  # nothing expired yet; emitted as a fresh pid anyway
        if feature in FEATURES and feature not in features:
            features.append(feature)

    # Classify probes: exact midpoints between centre pairs (equidistant
    # cores — the tie-break trap), plus one far-away noise probe.
    for a, b in zip(centres, centres[1:]):
        probes.append(((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0))
    probes.append((200.0, 200.0))

    return Scenario(
        name=name or f"seed-{seed}",
        seed=seed,
        eps=eps,
        tau=tau,
        window=window,
        stride=stride,
        time_based=time_based,
        points=builder.points,
        probes=probes,
        features=features,
    )


def scenarios_from_seed(seed: int, count: int) -> list[Scenario]:
    """``count`` scenarios derived from one master seed (stable sub-seeds)."""
    return [
        generate_scenario(seed * 1_000 + i, name=f"seed-{seed}.{i}")
        for i in range(count)
    ]


# ------------------------------------------------------------------ case IO


def save_case(path: str | Path, scenario: Scenario, meta: dict | None = None) -> Path:
    """Write a replayable JSONL case file (header line + one point per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "case": CASE_FORMAT,
        "name": scenario.name,
        "seed": scenario.seed,
        "eps": scenario.eps,
        "tau": scenario.tau,
        "window": scenario.window,
        "stride": scenario.stride,
        "time_based": scenario.time_based,
        "probes": [list(p) for p in scenario.probes],
        "features": list(scenario.features),
    }
    if meta:
        header["meta"] = meta
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for point in scenario.points:
        lines.append(
            json.dumps(
                {"pid": point.pid, "coords": list(point.coords), "time": point.time},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_case(path: str | Path) -> tuple[Scenario, dict]:
    """Read a case file back into ``(scenario, meta)``."""
    path = Path(path)
    try:
        lines = [
            line for line in path.read_text(encoding="utf-8").splitlines() if line
        ]
        header = json.loads(lines[0])
    except (OSError, ValueError, IndexError) as exc:
        raise CaseError(f"unreadable case file {path}: {exc}") from exc
    if header.get("case") != CASE_FORMAT:
        raise CaseError(
            f"{path} is not a fuzz case file (header {header.get('case')!r})"
        )
    try:
        points = []
        for line in lines[1:]:
            row = json.loads(line)
            points.append(
                StreamPoint(
                    int(row["pid"]),
                    tuple(float(c) for c in row["coords"]),
                    float(row.get("time", 0.0)),
                )
            )
        scenario = Scenario(
            name=str(header.get("name", path.stem)),
            seed=int(header.get("seed", 0)),
            eps=float(header["eps"]),
            tau=int(header["tau"]),
            window=int(header["window"]),
            stride=int(header["stride"]),
            time_based=bool(header.get("time_based", False)),
            points=points,
            probes=[tuple(p) for p in header.get("probes", [])],
            features=list(header.get("features", [])),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CaseError(f"malformed case file {path}: {exc}") from exc
    return scenario, dict(header.get("meta", {}))
