"""Delta-debugging shrinker: minimize a failing stream to a tiny case.

Classic ddmin over the scenario's point list: try dropping contiguous
chunks (half the stream, then quarters, … down to single points), keeping
any cut after which the predicate still fails, and restarting at coarse
granularity after progress. A second pass minimizes the probe list the
same way (only the classify oracle reads probes, but a one-probe case file
is easier to stare at either way).

The predicate receives a candidate :class:`~repro.fuzz.scenarios.Scenario`
and returns ``True`` when the original failure still reproduces. A
predicate that *raises* counts as not-reproducing: a cut that turns the
failure into a different crash (say, a pid-reuse
:class:`~repro.common.errors.StreamOrderError` once the first life of the
pid was removed) must not be kept, or the shrunk case would no longer
witness the bug it was filed for.

Everything is deterministic and bounded: the sweep order is fixed and
``max_evals`` caps predicate runs, so the same failing scenario always
shrinks to the same case in the same time.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace

from repro.fuzz.scenarios import Scenario


def shrink(
    scenario: Scenario,
    predicate: Callable[[Scenario], bool],
    *,
    max_evals: int = 400,
) -> Scenario:
    """Smallest scenario (fewest points, then fewest probes) still failing.

    Args:
        scenario: the failing input (assumed to satisfy ``predicate``).
        predicate: ``True`` when a candidate still reproduces the failure.
        max_evals: hard cap on predicate evaluations.

    Returns:
        The minimized scenario — ``scenario`` itself when nothing could be
        removed within the budget.
    """
    budget = _Budget(predicate, max_evals)
    points = _ddmin(
        list(scenario.points),
        lambda pts: budget.holds(scenario.with_points(pts)),
    )
    shrunk = scenario.with_points(points)
    probes = _minimal_probes(shrunk, budget)
    return replace(shrunk, probes=probes, name=f"{scenario.name}-shrunk")


class _Budget:
    """Predicate wrapper: counts evaluations, absorbs crashes as False."""

    def __init__(self, predicate: Callable[[Scenario], bool], max_evals: int):
        self.predicate = predicate
        self.max_evals = max_evals
        self.evals = 0

    def holds(self, candidate: Scenario) -> bool:
        if self.evals >= self.max_evals:
            return False
        self.evals += 1
        try:
            return bool(self.predicate(candidate))
        except Exception:  # noqa: BLE001 - a new crash is a different bug
            return False


def _ddmin(items: list, holds: Callable[[list], bool]) -> list:
    """Minimize ``items`` under ``holds`` by chunked removal."""
    chunk = max(1, len(items) // 2)
    while chunk >= 1:
        removed = False
        i = 0
        while i < len(items):
            candidate = items[:i] + items[i + chunk :]
            if candidate != items and holds(candidate):
                items = candidate
                removed = True
                # Keep scanning at the same offset: the next chunk shifted
                # into place.
            else:
                i += chunk
        if removed and chunk > 1:
            chunk = max(1, len(items) // 2)  # restart coarse after progress
        elif chunk == 1 and removed:
            continue  # sweep singles until a full pass removes nothing
        else:
            chunk //= 2
    return items


def _minimal_probes(scenario: Scenario, budget: _Budget) -> list:
    """Fewest probes that keep the failure alive (1, usually)."""
    if len(scenario.probes) <= 1:
        return list(scenario.probes)
    for probe in scenario.probes:
        if budget.holds(replace(scenario, probes=[probe])):
            return [probe]
    probes = _ddmin(
        list(scenario.probes),
        lambda ps: budget.holds(replace(scenario, probes=list(ps))),
    )
    return probes
