"""Deterministic differential fuzzing for the DISC pipeline.

DISC's value proposition is Theorem 1: strided incremental maintenance is
*exactly* equivalent to re-clustering the window from scratch. The point
tests assert that on streams a human thought of; this package is the
machine that imagines the streams a human did not — timestamp ties, points
at exactly ``eps``, burst/eviction cliffs, empty and singleton strides,
pid reuse after expiry, merge/split chains — and checks every one against
an oracle matrix (fresh-DBSCAN equivalence, permutation invariance,
kill/resume byte-identity, serve-vs-offline equality, ``AS_OF`` time
travel).

Everything is seeded and fully deterministic: the same integer seed always
produces the same scenarios, the same oracle verdicts, and — when a check
fails — the same shrunk, replayable case file.

Entry points:

- :func:`repro.fuzz.scenarios.generate_scenario` — one adversarial stream
  from one seed.
- :func:`repro.fuzz.harness.run_fuzz` — the seed × scenario × backend ×
  oracle sweep, with shrinking on failure.
- :func:`repro.fuzz.harness.replay_case` — re-run a committed case file
  (``tests/corpus/`` replays these in tier-1).
- ``repro fuzz`` — the CLI wrapper (``--seed`` / ``--budget`` /
  ``--replay``).
"""

from repro.fuzz.harness import FuzzReport, fuzz_seed, replay_case, run_budget, run_fuzz
from repro.fuzz.oracles import ORACLES, OracleFailure
from repro.fuzz.scenarios import Scenario, generate_scenario, load_case, save_case
from repro.fuzz.shrink import shrink

__all__ = [
    "FuzzReport",
    "ORACLES",
    "OracleFailure",
    "Scenario",
    "fuzz_seed",
    "generate_scenario",
    "load_case",
    "replay_case",
    "run_budget",
    "run_fuzz",
    "save_case",
    "shrink",
]
