"""The fuzz driver: seeds → scenarios → oracle matrix → shrink → case files.

:func:`fuzz_seed` is the unit of work: derive a few scenarios from one
integer seed, run each through every requested backend × oracle, and — when
a check fails — shrink the stream with :func:`repro.fuzz.shrink.shrink` and
write a replayable case file. :func:`run_fuzz` sweeps a seed list,
:func:`run_budget` keeps drawing fresh seeds until a wall-clock budget runs
out (the nightly CI job), and :func:`replay_case` re-runs a committed case
file — the tier-1 corpus test replays ``tests/corpus/`` this way, so every
past failure stays a regression guard.

Everything except :func:`run_budget` is deterministic: a
:class:`FuzzReport`'s rendered text contains no timings or paths outside
``out_dir``, so ``repro fuzz --seed N`` twice produces byte-identical
output (CI diffs the two runs to prove it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.oracles import ORACLES, OracleFailure
from repro.fuzz.scenarios import (
    Scenario,
    load_case,
    save_case,
    scenarios_from_seed,
)
from repro.fuzz.shrink import shrink
from repro.index.registry import available_indexes

#: Scenarios derived per seed by default.
SCENARIOS_PER_SEED = 3


@dataclass
class FuzzReport:
    """Outcome of one fuzz invocation (seed sweep, budget run, or replay)."""

    seeds: list[int] = field(default_factory=list)
    scenarios: int = 0
    checks: int = 0
    failures: list[OracleFailure] = field(default_factory=list)
    cases: list[str] = field(default_factory=list)
    lines: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "FuzzReport") -> None:
        self.seeds.extend(s for s in other.seeds if s not in self.seeds)
        self.scenarios += other.scenarios
        self.checks += other.checks
        self.failures.extend(other.failures)
        self.cases.extend(other.cases)
        self.lines.extend(other.lines)

    def render(self) -> str:
        """The harness's stdout: deterministic for a fixed seed + config."""
        tail = (
            f"fuzz: {self.checks} checks over {self.scenarios} scenario(s), "
            f"{len(self.failures)} failure(s)"
        )
        return "\n".join([*self.lines, tail])

    def as_dict(self) -> dict:
        return {
            "seeds": list(self.seeds),
            "scenarios": self.scenarios,
            "checks": self.checks,
            "ok": self.ok,
            "failures": [
                {
                    "oracle": f.oracle,
                    "backend": f.backend,
                    "stride": f.stride,
                    "detail": f.detail,
                }
                for f in self.failures
            ],
            "cases": list(self.cases),
        }


def _resolve(backends, oracles) -> tuple[list[str], list[str]]:
    backends = list(backends) if backends else list(available_indexes())
    oracles = list(oracles) if oracles else list(ORACLES)
    unknown = [name for name in oracles if name not in ORACLES]
    if unknown:
        raise KeyError(
            f"unknown oracle(s) {unknown}; available: {sorted(ORACLES)}"
        )
    return backends, oracles


def _run_oracle(
    oracle: str, scenario: Scenario, backend: str
) -> list[OracleFailure]:
    """One oracle run; an unexpected crash is itself a reportable finding."""
    try:
        return ORACLES[oracle](scenario, backend)
    except Exception as exc:  # noqa: BLE001 - the fuzzer reports, never dies
        return [
            OracleFailure(
                oracle, backend, None, f"crashed: {type(exc).__name__}: {exc}"
            )
        ]


def check_scenario(
    scenario: Scenario,
    *,
    backends=None,
    oracles=None,
) -> tuple[list[OracleFailure], int]:
    """Run the full oracle matrix over one scenario.

    Returns ``(failures, checks_run)``. Stops a backend's column at its
    first failing oracle (later oracles on a broken backend only repeat
    the noise), but always covers every backend.
    """
    backends, oracles = _resolve(backends, oracles)
    failures: list[OracleFailure] = []
    checks = 0
    for backend in backends:
        for oracle in oracles:
            checks += 1
            found = _run_oracle(oracle, scenario, backend)
            if found:
                failures.extend(found)
                break
    return failures, checks


def fuzz_seed(
    seed: int,
    *,
    backends=None,
    oracles=None,
    scenarios_per_seed: int = SCENARIOS_PER_SEED,
    out_dir: str | Path | None = None,
    do_shrink: bool = True,
) -> FuzzReport:
    """Fuzz every scenario derived from one master seed.

    Failures are shrunk (first failing check per scenario) and saved as
    case files under ``out_dir`` when one is given.
    """
    backends, oracles = _resolve(backends, oracles)
    report = FuzzReport(seeds=[seed])
    report.lines.append(
        f"fuzz: seed {seed} -> {scenarios_per_seed} scenario(s) x "
        f"{len(backends)} backend(s) x {len(oracles)} oracle(s)"
    )
    for scenario in scenarios_from_seed(seed, scenarios_per_seed):
        report.scenarios += 1
        failures, checks = check_scenario(
            scenario, backends=backends, oracles=oracles
        )
        report.checks += checks
        if not failures:
            report.lines.append(f"  {scenario.describe()}: ok")
            continue
        report.failures.extend(failures)
        report.lines.append(f"  {scenario.describe()}: FAIL")
        for failure in failures:
            report.lines.append(f"    {failure.describe()}")
        first = failures[0]
        if do_shrink:
            shrunk = shrink(
                scenario,
                lambda cand: bool(
                    _run_oracle(first.oracle, cand, first.backend)
                ),
            )
            report.lines.append(
                f"    shrunk {len(scenario.points)} -> "
                f"{len(shrunk.points)} points"
            )
        else:
            shrunk = scenario
        if out_dir is not None:
            path = save_case(
                Path(out_dir)
                / f"case-{shrunk.name}-{first.oracle}-{first.backend}.jsonl",
                shrunk,
                meta={
                    "oracle": first.oracle,
                    "backend": first.backend,
                    "stride": first.stride,
                    "detail": first.detail,
                    "original_points": len(scenario.points),
                },
            )
            report.cases.append(str(path))
            report.lines.append(f"    case written: {path}")
    return report


def run_fuzz(
    seeds,
    *,
    backends=None,
    oracles=None,
    scenarios_per_seed: int = SCENARIOS_PER_SEED,
    out_dir: str | Path | None = None,
    do_shrink: bool = True,
) -> FuzzReport:
    """Sweep a list of master seeds; aggregate one report."""
    report = FuzzReport()
    for seed in seeds:
        report.merge(
            fuzz_seed(
                int(seed),
                backends=backends,
                oracles=oracles,
                scenarios_per_seed=scenarios_per_seed,
                out_dir=out_dir,
                do_shrink=do_shrink,
            )
        )
    return report


def run_budget(
    minutes: float,
    *,
    start_seed: int = 0,
    backends=None,
    oracles=None,
    scenarios_per_seed: int = SCENARIOS_PER_SEED,
    out_dir: str | Path | None = None,
    stop_on_failure: bool = True,
) -> FuzzReport:
    """Draw fresh seeds until the wall-clock budget is spent (nightly CI).

    Seeds are consumed in order from ``start_seed``, so a budget run's
    *findings* are reproducible with ``repro fuzz --seed`` even though how
    far it gets is not. Stops early at the first failing seed by default —
    the shrunk case file is the artifact the nightly job uploads.
    """
    deadline = time.monotonic() + minutes * 60.0
    report = FuzzReport()
    seed = start_seed
    while time.monotonic() < deadline:
        report.merge(
            fuzz_seed(
                seed,
                backends=backends,
                oracles=oracles,
                scenarios_per_seed=scenarios_per_seed,
                out_dir=out_dir,
            )
        )
        if stop_on_failure and not report.ok:
            break
        seed += 1
    report.lines.append(f"fuzz: budget spent after seed(s) {start_seed}..{seed}")
    return report


def replay_case(
    path: str | Path,
    *,
    backends=None,
    oracles=None,
) -> FuzzReport:
    """Re-run a saved case file; a clean report means the bug stays fixed.

    When the case records the oracle/backend that minted it (they all do),
    only that pair is replayed — the corpus stays fast enough for tier-1 —
    unless the caller overrides ``backends``/``oracles``.
    """
    scenario, meta = load_case(path)
    if oracles is None and meta.get("oracle") in ORACLES:
        oracles = [meta["oracle"]]
    if backends is None and meta.get("backend") in available_indexes():
        backends = [meta["backend"]]
    report = FuzzReport(scenarios=1)
    report.lines.append(f"replay: {Path(path).name} ({scenario.describe()})")
    failures, checks = check_scenario(
        scenario, backends=backends, oracles=oracles
    )
    report.checks = checks
    report.failures = failures
    for failure in failures:
        report.lines.append(f"  {failure.describe()}")
    if not failures:
        report.lines.append("  ok")
    return report
